// Tests for the api::Vfs mount table over a multi-volume core::Stack node:
// path routing ("/v0/file" -> volume 0's namespace), unknown-prefix ENOENT,
// cross-volume rename EXDEV, per-volume SyncPolicy resolution, per-volume
// statistics isolation, and descriptors surviving another volume's remount.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/vfs.h"
#include "fs_test_util.h"

namespace bio::api {
namespace {

using core::StackKind;
using fs::testutil::NodeFixture;
using fs::testutil::StackFixture;
using sim::Task;

const std::vector<StackKind> kHetero = {StackKind::kBfsDR,
                                        StackKind::kExt4DR};

// ---- path routing -----------------------------------------------------------

TEST(MountTest, PathsRouteToTheirVolumeNamespaces) {
  NodeFixture x(kHetero);
  Vfs vfs(*x.node);
  ASSERT_EQ(vfs.mount_count(), 2u);
  auto body = [&]() -> Task {
    // The same relative name on both volumes: two distinct files.
    File a = must(co_await vfs.open("/v0/data", {.create = true}));
    File b = must(co_await vfs.open("/v1/data", {.create = true}));
    must(co_await a.pwrite(0, 3));
    must(co_await b.pwrite(0, 1));
    EXPECT_EQ(must(a.size_blocks()), 3u);
    EXPECT_EQ(must(b.size_blocks()), 1u) << "volumes must not share a file";
    EXPECT_NE(x.fs(0).lookup("data"), nullptr);
    EXPECT_NE(x.fs(1).lookup("data"), nullptr);
    EXPECT_EQ(x.fs(0).lookup("data")->size_blocks, 3u);
    EXPECT_EQ(x.fs(1).lookup("data")->size_blocks, 1u);
    must(a.close());
    must(b.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(MountTest, UnknownMountPrefixIsEnoent) {
  NodeFixture x(kHetero);
  Vfs vfs(*x.node);
  auto body = [&]() -> Task {
    EXPECT_EQ((co_await vfs.open("/ghost/f", {.create = true})).error(),
              Errno::kNoEnt)
        << "unknown mount prefix must not create anywhere";
    EXPECT_EQ((co_await vfs.open("plain", {.create = true})).error(),
              Errno::kNoEnt)
        << "no root mount: unrouted names have no home";
    EXPECT_EQ((co_await vfs.unlink("/ghost/f")).error(), Errno::kNoEnt);
    EXPECT_EQ((co_await vfs.rename("/ghost/a", "/ghost/b")).error(),
              Errno::kNoEnt);
    // Mount points themselves are not files.
    EXPECT_EQ((co_await vfs.open("/v0", {.create = true})).error(),
              Errno::kInval);
    EXPECT_EQ((co_await vfs.open("/v0/", {.create = true})).error(),
              Errno::kInval);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_GT(vfs.stats().errors, 4u);
}

TEST(MountTest, RootMountCoexistsWithNamedMounts) {
  // A node whose first volume is unnamed: it becomes the root mount and
  // owns every name no named mount claims — the single-volume workloads'
  // names keep resolving while "/v1/..." routes to the second volume.
  core::NodeConfig cfg;
  cfg.volumes.push_back(
      fs::testutil::test_stack_config(StackKind::kBfsDR).volume(""));
  cfg.volumes.push_back(
      fs::testutil::test_stack_config(StackKind::kExt4DR).volume("v1"));
  NodeFixture x({}, &cfg);
  Vfs vfs(*x.node);
  auto body = [&]() -> Task {
    File r = must(co_await vfs.open("plain", {.create = true}));
    File m = must(co_await vfs.open("/v1/plain", {.create = true}));
    must(co_await r.pwrite(0, 2));
    must(co_await m.pwrite(0, 1));
    EXPECT_NE(x.fs(0).lookup("plain"), nullptr);
    EXPECT_NE(x.fs(1).lookup("plain"), nullptr);
    // An unmatched "/x/y" name falls back to the root mount verbatim.
    File odd = must(co_await vfs.open("/no-such-mount/y", {.create = true}));
    EXPECT_NE(x.fs(0).lookup("/no-such-mount/y"), nullptr);
    must(odd.close());
    must(r.close());
    must(m.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(MountTest, DuplicateMountNameIsEexist) {
  StackFixture x(StackKind::kExt4DR);
  Vfs vfs(*x.stack);  // root mount
  EXPECT_EQ(vfs.mount("", x.stack->fs(),
                      SyncPolicy::for_stack(StackKind::kExt4DR))
                .error(),
            Errno::kExist);
  must(vfs.mount("extra", x.stack->fs(),
                 SyncPolicy::for_stack(StackKind::kExt4DR)));
  EXPECT_EQ(vfs.mount("extra", x.stack->fs(),
                      SyncPolicy::for_stack(StackKind::kExt4DR))
                .error(),
            Errno::kExist);
}

// ---- rename -----------------------------------------------------------------

TEST(MountTest, CrossVolumeRenameIsExdev) {
  NodeFixture x(kHetero);
  Vfs vfs(*x.node);
  auto body = [&]() -> Task {
    File f = must(co_await vfs.open("/v0/a", {.create = true}));
    must(f.close());
    EXPECT_EQ((co_await vfs.rename("/v0/a", "/v1/a")).error(), Errno::kXDev)
        << "a file must not silently migrate between volumes";
    // Source untouched by the failed rename.
    EXPECT_NE(x.fs(0).lookup("a"), nullptr);
    EXPECT_EQ(x.fs(1).lookup("a"), nullptr);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(vfs.stats().renames, 0u);
}

TEST(MountTest, SameVolumeRenameMovesTheFile) {
  NodeFixture x(kHetero);
  Vfs vfs(*x.node);
  auto body = [&]() -> Task {
    File f = must(co_await vfs.open("/v0/old", {.create = true}));
    must(co_await f.pwrite(0, 2));
    must(co_await vfs.rename("/v0/old", "/v0/new"));
    EXPECT_EQ((co_await vfs.open("/v0/old")).error(), Errno::kNoEnt);
    File g = must(co_await vfs.open("/v0/new"));
    EXPECT_EQ(must(g.size_blocks()), 2u) << "rename must keep the data";
    // The descriptor opened before the rename stays usable.
    must(co_await f.pwrite(2, 1));
    EXPECT_EQ(must(g.size_blocks()), 3u);
    must(f.close());
    must(g.close());
    EXPECT_EQ((co_await vfs.rename("/v0/ghost", "/v0/x")).error(),
              Errno::kNoEnt);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(vfs.stats().renames, 1u);
  EXPECT_EQ(x.fs(0).stats().renames, 1u);
}

TEST(MountTest, RenameReplacesTargetAndDefersItsReclamation) {
  NodeFixture x(kHetero);
  Vfs vfs(*x.node);
  auto body = [&]() -> Task {
    File victim = must(
        co_await vfs.open("/v0/target", {.create = true, .extent_blocks = 8}));
    must(co_await victim.pwrite(0, 4));
    File src = must(
        co_await vfs.open("/v0/src", {.create = true, .extent_blocks = 8}));
    must(co_await src.pwrite(0, 1));
    must(co_await vfs.rename("/v0/src", "/v0/target"));
    // The name now resolves to the renamed file...
    File now = must(co_await vfs.open("/v0/target"));
    EXPECT_EQ(must(now.size_blocks()), 1u);
    // ...while the displaced file stays alive through its descriptor.
    must(co_await victim.pwrite(4, 1));
    EXPECT_EQ(must(victim.size_blocks()), 5u);
    must(now.close());
    must(victim.close());
    must(src.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

// ---- per-volume policy and statistics ---------------------------------------

TEST(MountTest, SyncIntentsResolvePerVolume) {
  NodeFixture x(kHetero);  // v0 BFS-DR, v1 EXT4-DR
  Vfs vfs(*x.node);
  auto body = [&]() -> Task {
    File a = must(co_await vfs.open("/v0/f", {.create = true}));
    File b = must(co_await vfs.open("/v1/f", {.create = true}));
    must(co_await a.pwrite(0, 1));
    must(co_await b.pwrite(0, 1));
    must(co_await a.order_point());
    must(co_await b.order_point());
    must(a.close());
    must(b.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(x.fs(0).stats().fdatabarriers, 1u)
      << "BFS-DR volume resolves order to fdatabarrier";
  EXPECT_EQ(x.fs(0).stats().fdatasyncs, 0u);
  EXPECT_EQ(x.fs(1).stats().fdatasyncs, 1u)
      << "EXT4-DR volume resolves order to fdatasync";
  EXPECT_EQ(x.fs(1).stats().fdatabarriers, 0u);
}

TEST(MountTest, PerVolumeStatisticsStayIsolated) {
  NodeFixture x(kHetero);
  Vfs vfs(*x.node);
  auto body = [&]() -> Task {
    File a = must(co_await vfs.open("/v0/only", {.create = true}));
    must(co_await a.pwrite(0, 2));
    must(co_await a.fsync());
    must(co_await vfs.unlink("/v0/only"));
    must(a.close());
    EXPECT_EQ((co_await vfs.open("/v1/nope")).error(), Errno::kNoEnt);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  // Volume-level filesystem stats: all activity on v0, none on v1.
  EXPECT_GT(x.fs(0).stats().writes, 0u);
  EXPECT_EQ(x.fs(0).stats().fsyncs, 1u);
  EXPECT_EQ(x.fs(0).stats().unlinks, 1u);
  EXPECT_EQ(x.fs(1).stats().writes, 0u);
  EXPECT_EQ(x.fs(1).stats().fsyncs, 0u);
  EXPECT_EQ(x.fs(1).stats().creates, 0u);
  // Mount-level Vfs stats mirror the split, including the error tick.
  const Vfs::Stats* v0 = vfs.stats_of("v0");
  const Vfs::Stats* v1 = vfs.stats_of("v1");
  ASSERT_NE(v0, nullptr);
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v0->opens, 1u);
  EXPECT_EQ(v0->creates, 1u);
  EXPECT_EQ(v0->unlinks, 1u);
  EXPECT_EQ(v0->closes, 1u);
  EXPECT_EQ(v1->opens, 0u);
  EXPECT_EQ(v1->errors, 1u);
  EXPECT_EQ(vfs.stats().opens, 1u) << "node-wide stats aggregate all mounts";
  EXPECT_EQ(vfs.stats_of("ghost"), nullptr);
}

TEST(MountTest, SameFilesystemUnderTwoMountsKeepsPerMountSemantics) {
  // One filesystem bind-mounted twice with different policies: the mount
  // travels with the *descriptor* (struct file -> vfsmount), so a file
  // already open through the first mount still gets the second mount's
  // policy and stats when reached through it.
  StackFixture x(StackKind::kBfsDR);
  Vfs vfs(*x.stack);  // root mount: the BFS-DR row
  must(vfs.mount("relaxed", x.stack->fs(),
                 SyncPolicy::for_stack(StackKind::kBfsOD)));
  auto body = [&]() -> Task {
    File a = must(co_await vfs.open("f", {.create = true}));
    File b = must(co_await vfs.open("/relaxed/f"));  // same file, same vnode
    must(co_await a.pwrite(0, 1));
    must(co_await a.durability_point());  // BFS-DR row: fdatasync
    must(co_await b.pwrite(1, 1));
    must(co_await b.durability_point());  // BFS-OD row: fdatabarrier
    must(a.close());
    must(b.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(x.fs().stats().fdatasyncs, 1u);
  EXPECT_EQ(x.fs().stats().fdatabarriers, 1u)
      << "the second mount's policy must win for its own descriptor";
  EXPECT_EQ(vfs.stats_of("")->opens, 1u);
  EXPECT_EQ(vfs.stats_of("")->closes, 1u);
  EXPECT_EQ(vfs.stats_of("relaxed")->opens, 1u);
  EXPECT_EQ(vfs.stats_of("relaxed")->closes, 1u)
      << "closes must land on the mount the fd was opened through";
}

// ---- remount ----------------------------------------------------------------

TEST(MountTest, FdSurvivesAnotherVolumesRemount) {
  NodeFixture x(kHetero);
  Vfs vfs(*x.node);
  File f0;
  auto setup = [&]() -> Task {
    f0 = must(co_await vfs.open("/v0/keep", {.create = true}));
    must(co_await f0.pwrite(0, 2));
    File f1 = must(co_await vfs.open("/v1/old", {.create = true}));
    must(f1.close());
  };
  x.sim().spawn("setup", setup());
  x.sim().run();

  // Remount volume 1 with a fresh filesystem over the same block layer.
  auto fresh = std::make_unique<fs::Filesystem>(
      x.sim(), x.vol(1).blk(), x.vol(1).config().fs);
  fresh->start();
  must(vfs.remount("v1", *fresh));
  EXPECT_EQ(vfs.remount("ghost", *fresh).error(), Errno::kNoEnt);

  auto after = [&]() -> Task {
    // The fd opened on volume 0 is untouched by volume 1's remount.
    must(co_await f0.pwrite(2, 1));
    must(co_await f0.fsync());
    EXPECT_EQ(must(f0.size_blocks()), 3u);
    // New opens on v1 resolve against the fresh filesystem: the old
    // namespace is gone.
    EXPECT_EQ((co_await vfs.open("/v1/old")).error(), Errno::kNoEnt);
    File n = must(co_await vfs.open("/v1/new", {.create = true}));
    must(co_await n.pwrite(0, 1));
    must(n.close());
    must(f0.close());
  };
  x.sim().spawn("after", after());
  x.sim().run();
  EXPECT_NE(fresh->lookup("new"), nullptr);
  EXPECT_EQ(x.fs(0).lookup("keep")->size_blocks, 3u);
}

TEST(MountTest, FdOpenedBeforeRemountKeepsItsFilesystem) {
  NodeFixture x(kHetero);
  Vfs vfs(*x.node);
  File old_fd;
  auto setup = [&]() -> Task {
    old_fd = must(co_await vfs.open("/v1/file", {.create = true}));
    must(co_await old_fd.pwrite(0, 1));
  };
  x.sim().spawn("setup", setup());
  x.sim().run();
  const std::uint64_t old_writes = x.fs(1).stats().writes;

  auto fresh = std::make_unique<fs::Filesystem>(
      x.sim(), x.vol(1).blk(), x.vol(1).config().fs);
  fresh->start();
  must(vfs.remount("v1", *fresh));
  EXPECT_EQ(vfs.filesystem_of("v1"), fresh.get());

  auto after = [&]() -> Task {
    // The pre-remount descriptor keeps writing to the filesystem it was
    // opened on — not to the fresh one.
    must(co_await old_fd.pwrite(1, 1));
    must(old_fd.close());
  };
  x.sim().spawn("after", after());
  x.sim().run();
  EXPECT_GT(x.fs(1).stats().writes, old_writes);
  EXPECT_EQ(fresh->stats().writes, 0u);
}

}  // namespace
}  // namespace bio::api
