// Tests for the handle-based VFS layer: descriptor lifecycle, per-fd
// offsets, errno paths, and the SyncPolicy substitution table — including
// parity between Vfs-resolved intents and direct policy-row issuance for
// every StackKind.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/ring.h"
#include "api/vfs.h"
#include "fs_test_util.h"
#include "sim/sync.h"

namespace bio::api {
namespace {

using core::StackKind;
using fs::testutil::StackFixture;
using sim::Task;

constexpr StackKind kAllKinds[] = {StackKind::kExt4DR, StackKind::kExt4OD,
                                   StackKind::kBfsDR, StackKind::kBfsOD,
                                   StackKind::kOptFs};

// ---- descriptor lifecycle ---------------------------------------------------

TEST(VfsTest, OpenAllocatesLowestFdAndCloseRecyclesIt) {
  StackFixture x(StackKind::kBfsDR);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    File a = must(co_await vfs.open("a", {.create = true}));
    File b = must(co_await vfs.open("b", {.create = true}));
    EXPECT_EQ(a.fd(), 0);
    EXPECT_EQ(b.fd(), 1);
    EXPECT_EQ(vfs.open_fds(), 2u);

    // Same file again: new fd, shared vnode, still counted.
    File a2 = must(co_await vfs.open("a"));
    EXPECT_EQ(a2.fd(), 2);

    must(a.close());
    File c = must(co_await vfs.open("c", {.create = true}));
    EXPECT_EQ(c.fd(), 0) << "lowest free fd must be recycled";
    EXPECT_EQ(vfs.open_fds(), 3u);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(vfs.stats().opens, 4u);
  EXPECT_EQ(vfs.stats().creates, 3u);
}

TEST(VfsTest, EveryFdSyscallReturnsEbadfAfterClose) {
  StackFixture x(StackKind::kExt4DR);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    File f = must(co_await vfs.open("a", {.create = true}));
    const Fd fd = f.fd();
    must(co_await vfs.pwrite(fd, 0, 1));
    must(f.close());
    EXPECT_FALSE(f.valid());

    EXPECT_EQ((co_await vfs.pwrite(fd, 0, 1)).error(), Errno::kBadF);
    EXPECT_EQ((co_await vfs.pread(fd, 0, 1)).error(), Errno::kBadF);
    EXPECT_EQ((co_await vfs.read(fd, 1)).error(), Errno::kBadF);
    EXPECT_EQ((co_await vfs.write(fd, 1)).error(), Errno::kBadF);
    EXPECT_EQ((co_await vfs.append(fd, 1)).error(), Errno::kBadF);
    EXPECT_EQ((co_await vfs.fsync(fd)).error(), Errno::kBadF);
    EXPECT_EQ((co_await vfs.fdatasync(fd)).error(), Errno::kBadF);
    EXPECT_EQ((co_await vfs.sync(fd, SyncIntent::kOrder)).error(),
              Errno::kBadF);
    EXPECT_EQ(vfs.size_blocks(fd).error(), Errno::kBadF);
    EXPECT_EQ(vfs.offset(fd).error(), Errno::kBadF);
    EXPECT_EQ(vfs.seek(fd, 0).error(), Errno::kBadF);
    EXPECT_EQ(vfs.close(fd).error(), Errno::kBadF) << "double close";
    EXPECT_EQ(vfs.close(-1).error(), Errno::kBadF);
    EXPECT_EQ(vfs.close(99).error(), Errno::kBadF);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_GT(vfs.stats().errors, 10u);
}

// ---- namespace errno paths --------------------------------------------------

TEST(VfsTest, OpenMissingIsEnoentExclusiveExistingIsEexist) {
  StackFixture x(StackKind::kExt4DR);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    EXPECT_EQ((co_await vfs.open("ghost")).error(), Errno::kNoEnt);
    File f = must(co_await vfs.open("a", {.create = true}));
    EXPECT_EQ(
        (co_await vfs.open("a", {.create = true, .exclusive = true})).error(),
        Errno::kExist);
    must(f.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(VfsTest, DoubleUnlinkIsEnoentAndOpenFdSurvivesUnlink) {
  StackFixture x(StackKind::kBfsDR);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    File f = must(co_await vfs.open("a", {.create = true}));
    must(co_await vfs.unlink("a"));
    EXPECT_EQ((co_await vfs.unlink("a")).error(), Errno::kNoEnt)
        << "second unlink of the same name";
    EXPECT_EQ((co_await vfs.open("a")).error(), Errno::kNoEnt)
        << "unlinked name must not resolve";

    // POSIX: the open descriptor keeps the file alive and writable.
    must(co_await f.pwrite(0, 2));
    must(co_await f.fsync());
    EXPECT_EQ(must(f.size_blocks()), 2u);
    must(f.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(VfsTest, OpenFdSurvivesInoRecycling) {
  // While a descriptor is open, unlink must defer recycling: a new file
  // created afterwards must get neither the ino slot's vnode nor the old
  // file's extent, and the old fd keeps addressing the old storage.
  StackFixture x(StackKind::kBfsDR);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    File old_f = must(
        co_await vfs.open("a", {.create = true, .extent_blocks = 8}));
    const flash::Lba old_base = x.fs().lookup("a")->extent_base;
    must(co_await vfs.unlink("a"));
    File new_f = must(
        co_await vfs.open("b", {.create = true, .extent_blocks = 8}));
    EXPECT_NE(x.fs().lookup("b")->extent_base, old_base)
        << "extent must not be recycled while the old fd is open";
    must(co_await old_f.pwrite(0, 2));
    must(co_await new_f.pwrite(0, 1));
    EXPECT_EQ(must(old_f.size_blocks()), 2u);
    EXPECT_EQ(must(new_f.size_blocks()), 1u) << "descriptors must not alias";
    must(co_await old_f.fsync());
    must(old_f.close());
    // Last close reclaims: the next create of the same size may now reuse
    // the old extent.
    File c = must(
        co_await vfs.open("c", {.create = true, .extent_blocks = 8}));
    EXPECT_EQ(x.fs().lookup("c")->extent_base, old_base)
        << "reclamation must happen at last close";
    must(c.close());
    must(new_f.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(VfsTest, ConcurrentAppendersGetDisjointPages) {
  // Both threads read EOF before either write completes; the append
  // reservation must still hand them disjoint pages (O_APPEND atomicity).
  StackFixture x(StackKind::kBfsDR);
  Vfs vfs(*x.stack);
  Fd fd_a = kInvalidFd;
  Fd fd_b = kInvalidFd;
  auto setup = [&]() -> Task {
    fd_a = must(co_await vfs.open("log",
                                  {.create = true, .extent_blocks = 16}))
               .fd();
    fd_b = must(co_await vfs.open("log")).fd();
  };
  x.sim().spawn("setup", setup());
  x.sim().run();

  auto appender = [&vfs](Fd fd) -> Task {
    for (int i = 0; i < 3; ++i) must(co_await vfs.append(fd, 1));
  };
  x.sim().spawn("a", appender(fd_a));
  x.sim().spawn("b", appender(fd_b));
  x.sim().run();
  EXPECT_EQ(must(vfs.size_blocks(fd_a)), 6u)
      << "6 appends must yield 6 pages, not overlapping writes";
}

TEST(VfsTest, HugeOffsetsFailCleanlyInsteadOfWrapping) {
  StackFixture x(StackKind::kExt4DR);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    File f = must(
        co_await vfs.open("a", {.create = true, .extent_blocks = 8}));
    must(co_await f.pwrite(0, 2));
    // uint32 page+npages would wrap to 1 and pass the bounds check.
    EXPECT_EQ((co_await f.pwrite(0xFFFFFFFFu, 2)).error(), Errno::kNoSpc);
    // A seek past 2^32 pages must not truncate to a low page.
    must(vfs.seek(f.fd(), std::uint64_t{1} << 32));
    EXPECT_EQ(must(co_await f.read(1)), 0u) << "far offset reads EOF";
    EXPECT_EQ((co_await f.write(1)).error(), Errno::kNoSpc);
    must(f.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(VfsTest, CloseDuringInflightIoDefersReclamation) {
  // Thread A suspends inside a write; thread B unlinks and closes the only
  // fd. The in-flight syscall pins the vnode, so the extent must not be
  // handed to a new file until A's IO completes.
  StackFixture x(StackKind::kBfsDR);
  Vfs vfs(*x.stack);
  Fd fd = kInvalidFd;
  flash::Lba base = 0;
  auto setup = [&]() -> Task {
    fd = must(co_await vfs.open("victim",
                                {.create = true, .extent_blocks = 8}))
             .fd();
    base = x.fs().lookup("victim")->extent_base;
  };
  x.sim().spawn("setup", setup());
  x.sim().run();

  auto writer = [&]() -> Task {
    must(co_await vfs.pwrite(fd, 0, 4));  // suspends in the write syscall
  };
  auto closer = [&]() -> Task {
    must(co_await vfs.unlink("victim"));
    must(vfs.close(fd));
    File fresh = must(
        co_await vfs.open("fresh", {.create = true, .extent_blocks = 8}));
    EXPECT_NE(x.fs().lookup("fresh")->extent_base, base)
        << "extent must stay pinned while A's write is in flight";
    must(fresh.close());
  };
  x.sim().spawn("a", writer());
  x.sim().spawn("b", closer());
  x.sim().run();

  // After everything drains the vnode is gone and the extent is reusable.
  auto after = [&]() -> Task {
    File again = must(
        co_await vfs.open("again", {.create = true, .extent_blocks = 8}));
    EXPECT_EQ(x.fs().lookup("again")->extent_base, base)
        << "reclamation must happen once the in-flight IO finished";
    must(again.close());
  };
  x.sim().spawn("c", after());
  x.sim().run();
  EXPECT_EQ(vfs.open_fds(), 0u);
}

TEST(VfsTest, FdReuseDuringInflightIoDoesNotCorruptNewOffset) {
  // Thread A suspends inside write(fd); thread B closes the fd and reopens
  // the SAME file into the recycled slot. A's completion must not advance
  // the new descriptor's offset (generation check, fd-reuse ABA).
  StackFixture x(StackKind::kExt4DR);
  Vfs vfs(*x.stack);
  Fd fd = kInvalidFd;
  auto setup = [&]() -> Task {
    File f = must(co_await vfs.open("shared",
                                    {.create = true, .extent_blocks = 16}));
    must(co_await f.pwrite(0, 8));  // pre-size so offset-writes stay inside
    fd = f.fd();
  };
  x.sim().spawn("setup", setup());
  x.sim().run();

  auto writer = [&]() -> Task {
    (void)co_await vfs.write(fd, 2);  // suspends; fd is recycled meanwhile
  };
  auto recycler = [&]() -> Task {
    must(vfs.close(fd));
    File f2 = must(co_await vfs.open("shared"));
    EXPECT_EQ(f2.fd(), fd) << "slot must be recycled for the test to bite";
  };
  x.sim().spawn("a", writer());
  x.sim().spawn("b", recycler());
  x.sim().run();
  EXPECT_EQ(must(vfs.offset(fd)), 0u)
      << "the reopened descriptor must start at offset 0";
}

TEST(VfsTest, CloseDuringSuspendedSyncKeepsVnodeAlive) {
  // The fd-lifecycle edge of the concurrent sweep, directed: a sync
  // (fsync/fbarrier per capability) suspends against the vnode; the fd is
  // closed — and the whole file unlinked — while the sync is in flight.
  // The pinned vnode must survive until the sync returns; the sync must
  // still complete successfully; reclamation happens afterwards.
  for (StackKind kind : kAllKinds) {
    StackFixture x(kind);
    Vfs vfs(*x.stack);
    Fd fd = kInvalidFd;
    flash::Lba base = 0;
    auto setup = [&]() -> Task {
      File f = must(co_await vfs.open("victim",
                                      {.create = true, .extent_blocks = 8}));
      must(co_await f.pwrite(0, 4));  // dirty data: the sync has work to do
      fd = f.fd();
      base = x.fs().lookup("victim")->extent_base;
    };
    x.sim().spawn("setup", setup());
    x.sim().run();

    bool sync_returned = false;
    auto syncer = [&]() -> Task {
      // fbarrier where the journal supports it, fsync elsewhere — both pin
      // the vnode across their suspensions.
      Status s = kind == StackKind::kBfsDR || kind == StackKind::kBfsOD
                     ? co_await vfs.fbarrier(fd)
                     : co_await vfs.fsync(fd);
      EXPECT_TRUE(s.ok()) << core::to_string(kind);
      sync_returned = true;
    };
    auto closer = [&]() -> Task {
      co_await x.sim().yield();  // let the sync suspend first
      must(co_await vfs.unlink("victim"));
      must(vfs.close(fd));
      EXPECT_FALSE(sync_returned)
          << core::to_string(kind)
          << ": close must have raced the in-flight sync for this test "
             "to bite";
      // Double-close of the now-free slot: EBADF, not a crash and not a
      // foreign descriptor.
      EXPECT_EQ(vfs.close(fd).error(), Errno::kBadF);
    };
    x.sim().spawn("sync", syncer());
    x.sim().spawn("close", closer());
    x.sim().run();
    EXPECT_TRUE(sync_returned) << core::to_string(kind);
    EXPECT_EQ(vfs.open_fds(), 0u);

    // The unlinked file's storage is reclaimed only after the sync's pin
    // dropped — a fresh create now reuses the extent.
    auto after = [&]() -> Task {
      File again = must(
          co_await vfs.open("again", {.create = true, .extent_blocks = 8}));
      EXPECT_EQ(x.fs().lookup("again")->extent_base, base)
          << core::to_string(kind);
      must(again.close());
    };
    x.sim().spawn("after", after());
    x.sim().run();
  }
}

TEST(VfsTest, DoubleCloseIsEbadfOnEveryPath) {
  StackFixture x(StackKind::kExt4DR);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    File f = must(co_await vfs.open("a", {.create = true}));
    const Fd fd = f.fd();
    must(f.close());
    EXPECT_FALSE(f.valid());
    // Handle-level double close: the File already invalidated itself.
    EXPECT_EQ(f.close().error(), Errno::kBadF);
    // Raw-fd double close on the free slot.
    EXPECT_EQ(vfs.close(fd).error(), Errno::kBadF);
    // A copied handle still naming the stale fd is EBADF too.
    File copy = must(co_await vfs.open("a"));
    File alias = copy;
    must(copy.close());
    EXPECT_EQ(alias.close().error(), Errno::kBadF);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(vfs.stats().closes, 2u);
  EXPECT_GE(vfs.stats().errors, 3u);
}

// ---- seek / short-read boundary semantics -----------------------------------

TEST(VfsTest, SeekPastEofReadsShortAndNeverTouchesUnmappedPages) {
  // seek(2) past EOF (even past the extent) is legal; the following read
  // returns 0 at/past EOF and a short count across it — and the device
  // never sees a read of an unmapped page.
  StackFixture x(StackKind::kExt4DR);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    File f = must(
        co_await vfs.open("f", {.create = true, .extent_blocks = 16}));
    must(co_await f.pwrite(0, 4));  // size = 4 pages
    const std::uint64_t reads0 = x.fs().stats().reads;
    const std::uint64_t dev_reads0 = x.dev().stats().reads;

    // At EOF exactly: 0, offset unchanged.
    must(vfs.seek(f.fd(), 4));
    EXPECT_EQ(must(co_await f.read(2)), 0u);
    EXPECT_EQ(must(vfs.offset(f.fd())), 4u);

    // Past EOF but inside the extent: still 0.
    must(vfs.seek(f.fd(), 9));
    EXPECT_EQ(must(co_await f.read(1)), 0u);

    // Past the extent entirely, and a 64-bit offset far past any page the
    // cast-to-page path could alias back into range: still 0, no crash.
    must(vfs.seek(f.fd(), 64));
    EXPECT_EQ(must(co_await f.read(4)), 0u);
    must(vfs.seek(f.fd(), (1ull << 33) + 5));
    EXPECT_EQ(must(co_await f.read(4)), 0u);

    // Short read across EOF: 3 pages from offset 1, not 8.
    must(vfs.seek(f.fd(), 1));
    EXPECT_EQ(must(co_await f.read(8)), 3u);
    EXPECT_EQ(must(vfs.offset(f.fd())), 4u);

    // pread mirrors the same boundaries positionally.
    EXPECT_EQ(must(co_await f.pread(4, 2)), 0u);
    EXPECT_EQ(must(co_await f.pread(100, 2)), 0u);
    EXPECT_EQ(must(co_await f.pread(2, 8)), 2u);

    // Nothing above may have read an unmapped page: every filesystem read
    // stayed within [0, size) (and the boundary reads did no IO at all).
    EXPECT_EQ(x.fs().stats().reads - reads0, 2u)
        << "only the two short reads actually read";
    EXPECT_EQ(x.dev().stats().reads, dev_reads0)
        << "cache-resident pages: the device must see no read";

    // Writing through a past-EOF offset is ENOSPC beyond the extent but
    // legal inside it (sparse-ish allocating write).
    must(vfs.seek(f.fd(), 64));
    EXPECT_EQ((co_await f.write(1)).error(), Errno::kNoSpc);
    must(vfs.seek(f.fd(), 12));
    EXPECT_EQ(must(co_await f.write(2)), 2u);
    EXPECT_EQ(must(f.size_blocks()), 14u);
    must(f.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(VfsTest, DefaultConstructedFileReturnsEbadfNotCrash) {
  StackFixture x(StackKind::kExt4DR);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    File f;  // never opened
    EXPECT_FALSE(f.valid());
    EXPECT_EQ((co_await f.pwrite(0, 1)).error(), Errno::kBadF);
    EXPECT_EQ((co_await f.append(1)).error(), Errno::kBadF);
    EXPECT_EQ((co_await f.fsync()).error(), Errno::kBadF);
    EXPECT_EQ((co_await f.sync_file()).error(), Errno::kBadF);
    EXPECT_EQ(f.size_blocks().error(), Errno::kBadF);
    EXPECT_EQ(f.close().error(), Errno::kBadF);
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(VfsTest, WriteBeyondExtentAndInodeExhaustionAreEnospc) {
  StackFixture x(StackKind::kExt4DR);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    File f = must(
        co_await vfs.open("small", {.create = true, .extent_blocks = 4}));
    must(co_await f.pwrite(0, 4));  // fills the reserved extent
    EXPECT_EQ((co_await f.pwrite(3, 2)).error(), Errno::kNoSpc);
    EXPECT_EQ((co_await f.append(1)).error(), Errno::kNoSpc);
    must(f.close());

    // Exhaust the inode table (max_inodes=64, inos 16..63 usable).
    std::uint32_t created = 0;
    Errno last = Errno::kOk;
    for (int i = 0; i < 100; ++i) {
      Result<File> r = co_await vfs.open(
          "f" + std::to_string(i), {.create = true, .extent_blocks = 1});
      if (!r.ok()) {
        last = r.error();
        break;
      }
      must(r.value().close());
      ++created;
    }
    EXPECT_EQ(last, Errno::kNoSpc);
    EXPECT_GT(created, 16u);
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

// ---- per-fd offsets ---------------------------------------------------------

TEST(VfsTest, PerFdOffsetsAreIndependentAcrossSimulatedThreads) {
  StackFixture x(StackKind::kBfsDR);
  Vfs vfs(*x.stack);
  Fd fd_a = kInvalidFd;
  Fd fd_b = kInvalidFd;
  auto setup = [&]() -> Task {
    fd_a = must(co_await vfs.open("shared",
                                  {.create = true, .extent_blocks = 64}))
               .fd();
    fd_b = must(co_await vfs.open("shared")).fd();
  };
  x.sim().spawn("setup", setup());
  x.sim().run();

  auto writer = [&vfs](Fd fd, int n) -> Task {
    for (int i = 0; i < n; ++i) must(co_await vfs.write(fd, 1));
  };
  x.sim().spawn("a", writer(fd_a, 3));
  x.sim().spawn("b", writer(fd_b, 5));
  x.sim().run();

  EXPECT_EQ(must(vfs.offset(fd_a)), 3u)
      << "fd A's offset must not see fd B's writes";
  EXPECT_EQ(must(vfs.offset(fd_b)), 5u);
  EXPECT_EQ(must(vfs.size_blocks(fd_a)), 5u)
      << "both descriptors share one inode";
}

TEST(VfsTest, ReadAdvancesOffsetAndIsShortAtEof) {
  StackFixture x(StackKind::kExt4DR);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    File f = must(
        co_await vfs.open("a", {.create = true, .extent_blocks = 16}));
    must(co_await f.pwrite(0, 3));
    EXPECT_EQ(must(co_await f.read(2)), 2u);
    EXPECT_EQ(must(co_await f.read(2)), 1u) << "short read at EOF";
    EXPECT_EQ(must(co_await f.read(2)), 0u) << "at EOF";
    must(vfs.seek(f.fd(), 1));
    EXPECT_EQ(must(co_await f.read(8)), 2u);
    must(f.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(VfsTest, AppendWritesAtEofThroughAnyDescriptor) {
  StackFixture x(StackKind::kBfsDR);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    File a = must(
        co_await vfs.open("log", {.create = true, .extent_blocks = 16}));
    File b = must(co_await vfs.open("log"));
    must(co_await a.append(2));
    must(co_await b.append(1));
    must(co_await a.append(1));
    EXPECT_EQ(must(a.size_blocks()), 4u);
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

// ---- SyncPolicy -------------------------------------------------------------

TEST(SyncPolicyTest, TableMatchesPaperSubstitution) {
  const SyncPolicy ext4 = SyncPolicy::for_stack(StackKind::kExt4DR);
  EXPECT_EQ(ext4.order, Syscall::kFdatasync);
  EXPECT_EQ(ext4.durability, Syscall::kFdatasync);
  EXPECT_EQ(ext4.full_sync, Syscall::kFsync);
  EXPECT_EQ(SyncPolicy::for_stack(StackKind::kExt4OD), ext4)
      << "nobarrier changes the mount, not the syscalls";

  const SyncPolicy bfs_dr = SyncPolicy::for_stack(StackKind::kBfsDR);
  EXPECT_EQ(bfs_dr.order, Syscall::kFdatabarrier);
  EXPECT_EQ(bfs_dr.durability, Syscall::kFdatasync);
  EXPECT_EQ(bfs_dr.full_sync, Syscall::kFsync);

  const SyncPolicy bfs_od = SyncPolicy::for_stack(StackKind::kBfsOD);
  EXPECT_EQ(bfs_od.order, Syscall::kFdatabarrier);
  EXPECT_EQ(bfs_od.durability, Syscall::kFdatabarrier);
  EXPECT_EQ(bfs_od.full_sync, Syscall::kFbarrier);

  const SyncPolicy optfs = SyncPolicy::for_stack(StackKind::kOptFs);
  EXPECT_EQ(optfs.order, Syscall::kOsync);
  EXPECT_EQ(optfs.durability, Syscall::kOsync);
  EXPECT_EQ(optfs.full_sync, Syscall::kOsync);
}

/// One write+sync per intent, issuing the policy table's row directly
/// against the filesystem (no Vfs layer in the loop).
fs::Filesystem::Stats run_with_policy_rows(StackKind kind) {
  StackFixture x(kind);
  const SyncPolicy policy = SyncPolicy::for_stack(kind);
  auto body = [&]() -> Task {
    fs::Inode* f = nullptr;
    co_await x.fs().create("a", f, 64);
    co_await x.fs().write(*f, 0, 1);
    EXPECT_EQ(co_await api::issue(x.fs(), *f, policy.order),
              fs::FsStatus::kOk);
    co_await x.fs().write(*f, 1, 1);
    EXPECT_EQ(co_await api::issue(x.fs(), *f, policy.durability),
              fs::FsStatus::kOk);
    co_await x.fs().write(*f, 2, 1);
    EXPECT_EQ(co_await api::issue(x.fs(), *f, policy.full_sync),
              fs::FsStatus::kOk);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  return x.fs().stats();
}

/// The same sequence through Vfs + SyncPolicy intents.
fs::Filesystem::Stats run_with_vfs_policy(StackKind kind) {
  StackFixture x(kind);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    File f = must(
        co_await vfs.open("a", {.create = true, .extent_blocks = 64}));
    must(co_await f.pwrite(0, 1));
    must(co_await f.order_point());
    must(co_await f.pwrite(1, 1));
    must(co_await f.durability_point());
    must(co_await f.pwrite(2, 1));
    must(co_await f.sync_file());
  };
  x.sim().spawn("t", body());
  x.sim().run();
  return x.fs().stats();
}

TEST(SyncPolicyTest, VfsIntentsMatchDirectPolicyIssuance) {
  for (StackKind kind : kAllKinds) {
    const fs::Filesystem::Stats old_path = run_with_policy_rows(kind);
    const fs::Filesystem::Stats new_path = run_with_vfs_policy(kind);
    EXPECT_EQ(old_path.fsyncs, new_path.fsyncs) << core::to_string(kind);
    EXPECT_EQ(old_path.fdatasyncs, new_path.fdatasyncs)
        << core::to_string(kind);
    EXPECT_EQ(old_path.fbarriers, new_path.fbarriers) << core::to_string(kind);
    EXPECT_EQ(old_path.fdatabarriers, new_path.fdatabarriers)
        << core::to_string(kind);
    EXPECT_EQ(old_path.osyncs, new_path.osyncs) << core::to_string(kind);
    EXPECT_EQ(old_path.writes, new_path.writes) << core::to_string(kind);
  }
}

// ---- the OptFS dsync row ----------------------------------------------------

TEST(SyncPolicyTest, DsyncRowMatchesOptFsSubstitution) {
  const SyncPolicy dsync = SyncPolicy::optfs_dsync();
  EXPECT_EQ(dsync.order, Syscall::kOsync)
      << "ordering stays the optimistic osync";
  EXPECT_EQ(dsync.durability, Syscall::kDsync);
  EXPECT_EQ(dsync.full_sync, Syscall::kDsync);
}

TEST(SyncPolicyTest, DsyncVfsIntentsMatchDirectPolicyIssuance) {
  // Parity between direct row issuance and Vfs-resolved intents, as the
  // main table's parity test does — for the dsync row on the OptFS stack.
  auto direct = []() {
    StackFixture x(StackKind::kOptFs);
    const SyncPolicy policy = SyncPolicy::optfs_dsync();
    auto body = [&]() -> Task {
      fs::Inode* f = nullptr;
      co_await x.fs().create("a", f, 64);
      co_await x.fs().write(*f, 0, 1);
      EXPECT_EQ(co_await api::issue(x.fs(), *f, policy.order),
                fs::FsStatus::kOk);
      co_await x.fs().write(*f, 1, 1);
      EXPECT_EQ(co_await api::issue(x.fs(), *f, policy.durability),
                fs::FsStatus::kOk);
      co_await x.fs().write(*f, 2, 1);
      EXPECT_EQ(co_await api::issue(x.fs(), *f, policy.full_sync),
                fs::FsStatus::kOk);
    };
    x.sim().spawn("t", body());
    x.sim().run();
    return x.fs().stats();
  }();
  auto via_vfs = []() {
    StackFixture x(StackKind::kOptFs);
    Vfs vfs(x.fs(), SyncPolicy::optfs_dsync());
    auto body = [&]() -> Task {
      File f = must(
          co_await vfs.open("a", {.create = true, .extent_blocks = 64}));
      must(co_await f.pwrite(0, 1));
      must(co_await f.order_point());
      must(co_await f.pwrite(1, 1));
      must(co_await f.durability_point());
      must(co_await f.pwrite(2, 1));
      must(co_await f.sync_file());
    };
    x.sim().spawn("t", body());
    x.sim().run();
    return x.fs().stats();
  }();
  EXPECT_EQ(direct.osyncs, via_vfs.osyncs);
  EXPECT_EQ(direct.dsyncs, via_vfs.dsyncs);
  EXPECT_EQ(via_vfs.dsyncs, 2u) << "durability and full-sync use dsync";
  EXPECT_EQ(direct.writes, via_vfs.writes);
  EXPECT_EQ(direct.fsyncs, 0u);
  EXPECT_EQ(via_vfs.fsyncs, 0u);
}

TEST(SyncPolicyTest, DsyncMakesDataDurableAtReturnWhereOsyncDoesNot) {
  // The row's point: osync's durability is delayed (data may sit in the
  // device cache at return), dsync's data is on media at return while
  // metadata keeps the optimistic protocol.
  auto durable_after_durability_point = [](SyncPolicy policy,
                                           bool& cache_dirty) {
    StackFixture x(StackKind::kOptFs);
    Vfs vfs(x.fs(), policy);
    bool durable = false;
    auto body = [&]() -> Task {
      File f = must(
          co_await vfs.open("a", {.create = true, .extent_blocks = 16}));
      must(co_await f.pwrite(0, 4));
      must(co_await f.durability_point());
      const fs::Inode* inode = x.fs().lookup("a");
      durable = true;
      for (std::uint32_t p = 0; p < 4; ++p)
        durable = durable &&
                  x.dev().durable_state().contains(inode->lba_of_page(p));
      cache_dirty = x.dev().cache().dirty_count() > 0;
      must(f.close());
    };
    x.sim().spawn("t", body());
    x.sim().run();
    return durable;
  };
  bool osync_cache_dirty = false;
  bool dsync_cache_dirty = false;
  EXPECT_FALSE(durable_after_durability_point(
      SyncPolicy::for_stack(StackKind::kOptFs), osync_cache_dirty))
      << "osync must not flush — durability is delayed by design";
  EXPECT_TRUE(osync_cache_dirty);
  EXPECT_TRUE(durable_after_durability_point(SyncPolicy::optfs_dsync(),
                                             dsync_cache_dirty))
      << "dsync data must be on media at return";
}

TEST(SyncPolicyTest, IncompatiblePolicyRowIsEinvalNotAbort) {
  // The dsync row on a non-OptFS stack: policy-resolved intents must
  // surface the mismatch as a modelled errno, not a simulation abort.
  StackFixture x(StackKind::kExt4DR);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    File f = must(
        co_await vfs.open("a", {.create = true, .extent_blocks = 8}));
    must(f.set_policy(SyncPolicy::optfs_dsync()));
    must(co_await f.pwrite(0, 1));
    EXPECT_EQ((co_await f.durability_point()).error(), Errno::kInval);
    EXPECT_EQ((co_await f.sync_file()).error(), Errno::kInval);
    // The osync order point is equally foreign to JBD2.
    EXPECT_EQ((co_await f.order_point()).error(), Errno::kInval);
    // Direct barrier syscalls hit the same capability matrix.
    EXPECT_EQ((co_await f.fbarrier()).error(), Errno::kInval);
    EXPECT_EQ((co_await f.fdatabarrier()).error(), Errno::kInval);
    // Restoring the stack's own row makes the file syncable again.
    must(f.set_policy(SyncPolicy::for_stack(StackKind::kExt4DR)));
    must(co_await f.durability_point());
    must(f.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(x.fs().stats().dsyncs, 0u);
}

TEST(SyncPolicyTest, PerFileOverrideBeatsVfsDefault) {
  StackFixture x(StackKind::kBfsDR);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    File f = must(
        co_await vfs.open("a", {.create = true, .extent_blocks = 16}));
    // Demote this one file to the BFS-OD row: durability relaxed to
    // ordering — the per-call-site flexibility the paper's §5 argues for.
    must(f.set_policy(SyncPolicy::for_stack(StackKind::kBfsOD)));
    must(co_await f.pwrite(0, 1));
    must(co_await f.durability_point());
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(x.fs().stats().fdatabarriers, 1u)
      << "override must resolve durability to fdatabarrier";
  EXPECT_EQ(x.fs().stats().fdatasyncs, 0u);
}

TEST(SyncPolicyTest, OverrideIsSharedAcrossFdsOfOneFile) {
  StackFixture x(StackKind::kBfsDR);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    File a = must(
        co_await vfs.open("a", {.create = true, .extent_blocks = 16}));
    File b = must(co_await vfs.open("a"));
    must(a.set_policy(SyncPolicy::for_stack(StackKind::kBfsOD)));
    EXPECT_EQ(must(vfs.policy_of(b.fd())),
              SyncPolicy::for_stack(StackKind::kBfsOD))
        << "policy lives on the vnode, not the descriptor";
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

// ---- ring chaos: close() and destruction racing in-flight sqes --------------
// The chaos contract (DESIGN.md §10): a Ring never touches freed state when
// the application closes descriptors under it or destroys the ring with
// traffic still outstanding. Late completions surface as -EBADF (dead fd at
// issue time) or -ECANCELED (chain predecessor failed / ring closed), never
// as a crash.

using namespace sim::literals;

TEST(RingChaosTest, CloseBeforeDispatchFailsChainWithEbadfThenEcanceled) {
  StackFixture x(StackKind::kBfsDR);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    File f = must(
        co_await vfs.open("a", {.create = true, .extent_blocks = 8}));
    Ring ring(vfs);
    Sqe w;
    w.op = RingOp::kWrite;
    w.fd = f.fd();
    w.npages = 1;
    w.flags = kSqeLink;
    w.user_data = 1;
    Sqe s;
    s.op = RingOp::kFdatasync;
    s.fd = f.fd();
    s.flags = kSqeLink;
    s.user_data = 2;
    Sqe w2 = w;
    w2.flags = 0;
    w2.user_data = 3;
    EXPECT_TRUE(ring.push(w));
    EXPECT_TRUE(ring.push(s));
    EXPECT_TRUE(ring.push(w2));
    EXPECT_EQ(ring.submit(), 3u);
    // The sqes passed submit-time validation against a live fd; the close
    // lands before the chain driver's first event. Every op must now fail
    // cleanly at issue time — no late write through a recycled descriptor.
    must(f.close());
    const Cqe a = co_await ring.wait_cqe();
    const Cqe b = co_await ring.wait_cqe();
    const Cqe c = co_await ring.wait_cqe();
    EXPECT_EQ(a.user_data, 1u);
    EXPECT_EQ(a.res, -9) << "first op issued against the dead fd";
    EXPECT_EQ(b.user_data, 2u);
    EXPECT_EQ(b.res, kECanceled) << "linked successor cancels";
    EXPECT_EQ(c.user_data, 3u);
    EXPECT_EQ(c.res, kECanceled) << "chain tail cancels too";
    // The file itself is untouched.
    File g = must(co_await vfs.open("a"));
    EXPECT_EQ(must(g.size_blocks()), 0u);
    must(g.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(RingChaosTest, CloseRacingInFlightSqeLetsItFinishThenFailsSuccessor) {
  StackFixture x(StackKind::kBfsDR);
  Vfs vfs(*x.stack);
  sim::Notify sync_started(x.sim());
  Fd victim = kInvalidFd;
  auto body = [&]() -> Task {
    File f = must(
        co_await vfs.open("a", {.create = true, .extent_blocks = 8}));
    Ring ring(vfs);
    // Wake the closer the moment the fdatasync is issued, so the close
    // lands while that sqe is suspended mid-journal-commit — genuinely in
    // flight, not merely queued.
    ring.set_on_op_start([&](const Sqe& sqe) {
      if (sqe.user_data == 2) sync_started.notify_all();
    });
    Sqe w;
    w.op = RingOp::kWrite;
    w.fd = f.fd();
    w.npages = 4;
    w.flags = kSqeLink;
    w.user_data = 1;
    Sqe s;
    s.op = RingOp::kFdatasync;
    s.fd = f.fd();
    s.flags = kSqeLink;
    s.user_data = 2;
    Sqe w2;
    w2.op = RingOp::kWrite;
    w2.fd = f.fd();
    w2.page = 4;
    w2.npages = 1;
    w2.user_data = 3;
    EXPECT_TRUE(ring.push(w));
    EXPECT_TRUE(ring.push(s));
    EXPECT_TRUE(ring.push(w2));
    victim = f.fd();
    EXPECT_EQ(ring.submit(), 3u);
    const Cqe a = co_await ring.wait_cqe();
    EXPECT_EQ(a.user_data, 1u);
    EXPECT_EQ(a.res, 4);
    const Cqe b = co_await ring.wait_cqe();
    const Cqe c = co_await ring.wait_cqe();
    // The in-flight fdatasync pinned the vnode: it completes despite the
    // racing close. Its linked successor issues after the close and fails.
    EXPECT_EQ(b.user_data, 2u);
    EXPECT_EQ(b.res, 0) << "close cannot revoke an issued sync";
    EXPECT_EQ(c.user_data, 3u);
    EXPECT_EQ(c.res, -9) << "successor issued against the dead fd";
    // The synced data survived the descriptor churn.
    File g = must(co_await vfs.open("a"));
    EXPECT_EQ(must(g.size_blocks()), 4u);
    must(g.close());
  };
  auto closer = [&]() -> Task {
    co_await sync_started.wait();
    // Runs strictly after the fdatasync suspended into the journal.
    must(vfs.close(victim));
  };
  x.sim().spawn("closer", closer());
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(RingChaosTest, DestructionWithUnreapedCqesIsClean) {
  StackFixture x(StackKind::kBfsDR);
  Vfs vfs(*x.stack);
  auto body = [&]() -> Task {
    File f = must(
        co_await vfs.open("a", {.create = true, .extent_blocks = 8}));
    {
      Ring ring(vfs);
      for (std::uint64_t i = 0; i < 3; ++i) {
        Sqe w;
        w.op = RingOp::kWrite;
        w.fd = f.fd();
        w.page = static_cast<std::uint32_t>(i);
        w.npages = 1;
        w.user_data = i;
        EXPECT_TRUE(ring.push(w));
      }
      EXPECT_EQ(ring.submit(), 3u);
      while (ring.in_flight() > 0) co_await x.sim().delay(10 * 1_us);
      EXPECT_EQ(ring.cq_ready(), 3u);
      // Destroyed with every completion still queued: the cqes die with
      // the ring, the writes they describe do not.
    }
    must(co_await f.fsync());
    EXPECT_EQ(must(f.size_blocks()), 3u);
    must(f.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(RingChaosTest, DestructionWithOpsInFlightOrphansThemSafely) {
  StackFixture x(StackKind::kBfsDR);
  Vfs vfs(*x.stack);
  sim::Notify write_started(x.sim());
  auto ring = std::make_unique<Ring>(vfs);
  auto body = [&]() -> Task {
    File f = must(
        co_await vfs.open("a", {.create = true, .extent_blocks = 8}));
    ring->set_on_op_start([&](const Sqe& sqe) {
      if (sqe.user_data == 1) write_started.notify_all();
    });
    Sqe w;
    w.op = RingOp::kWrite;
    w.fd = f.fd();
    w.npages = 2;
    w.flags = kSqeLink;
    w.user_data = 1;
    Sqe s;
    s.op = RingOp::kFsync;
    s.fd = f.fd();
    s.user_data = 2;
    EXPECT_TRUE(ring->push(w));
    EXPECT_TRUE(ring->push(s));
    EXPECT_EQ(ring->submit(), 2u);
    EXPECT_EQ(ring->in_flight(), 2u);
    // The killer destroys the ring while the write is suspended mid-issue.
    // The orphaned driver finishes that write against the (live) Vfs, then
    // notices the closed core and abandons the rest of the chain.
    co_await x.sim().delay(5 * 1_ms);
    EXPECT_EQ(must(f.size_blocks()), 2u)
        << "the in-flight write still landed";
    must(f.close());
  };
  auto killer = [&]() -> Task {
    co_await write_started.wait();
    ring.reset();  // mid-flight destruction
  };
  x.sim().spawn("killer", killer());
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(ring, nullptr);
}

TEST(RingChaosTest, WaitCqeOnDestroyedRingReturnsEcanceled) {
  StackFixture x(StackKind::kBfsDR);
  Vfs vfs(*x.stack);
  bool waiter_done = false;
  auto ring = std::make_unique<Ring>(vfs);
  auto waiter = [&]() -> Task {
    const Cqe cqe = co_await ring->wait_cqe();
    EXPECT_EQ(cqe.res, kECanceled)
        << "a waiter outliving the ring reaps a canceled cqe, not garbage";
    waiter_done = true;
  };
  auto killer = [&]() -> Task {
    co_await x.sim().delay(1 * 1_ms);
    ring.reset();  // destroys the Ring under the sleeping waiter
  };
  x.sim().spawn("waiter", waiter());
  x.sim().spawn("killer", killer());
  x.sim().run();
  EXPECT_TRUE(waiter_done);
}

}  // namespace
}  // namespace bio::api
