// Full-stack crash-recovery tests (DESIGN.md §6): random Vfs workloads,
// power cuts at swept instants, fs::Recovery over the durable image, a
// remount on a fresh stack, and per-stack guarantee verification through
// chk::run_crash_check / run_crash_sweep.
//
// These sweeps are the regression net that caught (and now guards) real
// stack bugs: the journal-wrap space lifetime, the group-commit fsync that
// skipped its data flush, GC relocation truncating the recovery prefix,
// and the page-cache write-after-write hazard.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/vfs.h"
#include "chk/crash_check.h"
#include "fs/recovery.h"
#include "fs_test_util.h"

namespace bio {
namespace {

using namespace bio::sim::literals;
using chk::CrashCheckOptions;
using chk::CrashCheckResult;
using chk::CrashSweepResult;
using core::StackKind;

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const std::string& s : v) out += "\n  " + s;
  return out;
}

// ---- 1. the main sweep: every stack keeps its contract ---------------------

class CrashSweepTest : public testing::TestWithParam<StackKind> {};

TEST_P(CrashSweepTest, GuaranteesHoldAcross200CrashPoints) {
  const CrashSweepResult r = chk::run_crash_sweep(GetParam(), 200);
  EXPECT_EQ(r.points, 200);
  EXPECT_EQ(r.failed_points, 0) << join(r.sample_violations);
  // The sweep must actually exercise both regimes.
  EXPECT_GT(r.quiesced_points, 0) << "no post-quiescence crash points";
  EXPECT_LT(r.quiesced_points, r.points) << "no mid-workload crash points";
  EXPECT_GT(r.order_writes_checked, 1000u);
  if (GetParam() == StackKind::kExt4DR || GetParam() == StackKind::kBfsDR) {
    EXPECT_GT(r.acked_pages_checked, 1000u);
  }
  // The namespace-churn half of the workload must really run and be
  // verified: rename/unlink ops happened and their facts were checked.
  EXPECT_GT(r.renames_done, 100u) << "workload stopped renaming";
  EXPECT_GT(r.unlinks_done, 50u) << "workload stopped unlinking";
  EXPECT_GT(r.namespace_facts_checked, 400u)
      << "namespace consistency checks went dark";
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, CrashSweepTest,
    testing::Values(StackKind::kExt4DR, StackKind::kBfsDR, StackKind::kBfsOD,
                    StackKind::kOptFs),
    [](const testing::TestParamInfo<StackKind>& info) {
      std::string name = core::to_string(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

// ---- 1b. the same contracts on a heterogeneous multi-volume node -----------

TEST(MultiVolumeCrashTest, HeterogeneousNodeKeepsPerVolumeContracts) {
  // BFS-DR and EXT4-DR side by side behind one Vfs: one power cut hits
  // both; each volume recovers from its own journal and must keep its own
  // contract — >= 200 crash points per volume.
  const std::vector<StackKind> kinds = {StackKind::kBfsDR,
                                        StackKind::kExt4DR};
  const chk::MultiVolumeSweepResult r =
      chk::run_multi_volume_crash_sweep(kinds, 200);
  EXPECT_EQ(r.points, 200);
  EXPECT_EQ(r.failed_points, 0) << join(r.sample_violations);
  ASSERT_EQ(r.volumes.size(), 2u);
  for (std::size_t v = 0; v < r.volumes.size(); ++v) {
    const chk::CrashSweepResult& agg = r.volumes[v];
    EXPECT_EQ(agg.points, 200) << "volume " << v;
    EXPECT_EQ(agg.failed_points, 0) << "volume " << v;
    EXPECT_GT(agg.quiesced_points, 0) << "volume " << v;
    EXPECT_LT(agg.quiesced_points, agg.points) << "volume " << v;
    // Both kinds promise durable acks; both must have been exercised.
    EXPECT_GT(agg.acked_pages_checked, 1000u) << "volume " << v;
    EXPECT_GT(agg.order_writes_checked, 1000u) << "volume " << v;
    EXPECT_GT(agg.namespace_facts_checked, 400u) << "volume " << v;
    EXPECT_GT(agg.renames_done, 100u) << "volume " << v;
    EXPECT_GT(agg.unlinks_done, 50u) << "volume " << v;
  }
}

// ---- 2. the legacy stack must fail -----------------------------------------

TEST(NobarrierCrashTest, LegacyStackViolatesItsClaimedContract) {
  // EXT4 mounted nobarrier on an orderless device claims the EXT4-DR
  // contract and cannot keep it. If this sweep ever comes back clean, the
  // checker has lost its teeth (and the paper's Fig 1 motivation with it).
  const CrashSweepResult r = chk::run_crash_sweep(StackKind::kExt4OD, 200);
  EXPECT_GT(r.failed_points, 0)
      << "the nobarrier stack survived 200 power cuts — checker too weak";
}

// ---- 3. journal-wrap regression --------------------------------------------

class JournalWrapTest : public testing::TestWithParam<StackKind> {};

TEST_P(JournalWrapTest, TinyJournalHeavyChurnSurvivesMidWrapCrashes) {
  // A 48-block journal with metadata-heavy ops wraps constantly; before the
  // tail-tracking fix a wrap handed out blocks still owned by committed but
  // un-checkpointed transactions, clobbering the records recovery needs.
  CrashCheckOptions opt;
  opt.journal_blocks = 48;
  opt.ops = 100;
  const CrashSweepResult r = chk::run_crash_sweep(GetParam(), 60, 1000, opt);
  EXPECT_EQ(r.failed_points, 0) << join(r.sample_violations);
  EXPECT_GT(r.journal_wraps, 0u)
      << "scenario never wrapped — the regression test tests nothing";
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, JournalWrapTest,
    testing::Values(StackKind::kExt4DR, StackKind::kBfsDR, StackKind::kOptFs),
    [](const testing::TestParamInfo<StackKind>& info) {
      std::string name = core::to_string(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(JournalWrapTest, SpacePressureStallsInsteadOfClobbering) {
  // Crash far past the workload so every commit ran: with a journal this
  // small the reserve path must have stalled (and flushed checkpoints to
  // advance the tail) rather than silently reusing live records.
  CrashCheckOptions opt;
  opt.journal_blocks = 32;
  opt.ops = 120;
  const CrashCheckResult r =
      chk::run_crash_check(StackKind::kOptFs, 7, 400'000 * 1_us, opt);
  EXPECT_TRUE(r.ok()) << join(r.violations);
  EXPECT_TRUE(r.workload_finished);
  EXPECT_GT(r.journal_wraps, 0u);
  EXPECT_GT(r.journal_stalls, 0u)
      << "journal never stalled under pressure — space accounting inert";
  EXPECT_GT(r.checkpoint_flushes, 0u)
      << "tail advanced without making checkpoints durable";
}

// ---- 4. OptFS osync: prefix now, everything after the delay ----------------

TEST(OptFsOsyncCrashTest, DelayedDurabilityPrefixSemantics) {
  int mid_points = 0;
  int quiesced_points = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    // Mid-workload cut: recovered state must be an ordered prefix.
    CrashCheckResult mid = chk::run_crash_check(
        StackKind::kOptFs, seed, (500 + seed * 700) * 1_us, {});
    EXPECT_TRUE(mid.ok()) << join(mid.violations);
    if (!mid.workload_finished) ++mid_points;
    // Late cut (device quiesced): every osync'd write must be durable.
    CrashCheckResult late =
        chk::run_crash_check(StackKind::kOptFs, seed, 400'000 * 1_us, {});
    EXPECT_TRUE(late.ok()) << join(late.violations);
    if (late.quiesced) ++quiesced_points;
  }
  EXPECT_GT(mid_points, 5) << "mid-workload crash points all missed";
  EXPECT_GT(quiesced_points, 35) << "late crash points did not quiesce";
}

// ---- 4b. directed namespace-churn recovery ---------------------------------

TEST(NamespaceChurnRecoveryTest, DurableRenameRecoversUnderNewName) {
  fs::testutil::StackFixture x(StackKind::kBfsDR);
  api::Vfs vfs(*x.stack);
  auto body = [&]() -> sim::Task {
    api::File f = api::must(
        co_await vfs.open("a", {.create = true, .extent_blocks = 32}));
    api::must(co_await f.pwrite(0, 4));
    api::must(co_await f.sync_file());
    api::must(co_await vfs.rename("a", "b"));
    api::must(co_await f.sync_file());  // commits the rename durably
    api::must(f.close());
  };
  x.sim().spawn("app", body());
  x.sim().run_until(500'000'000);  // quiesce

  const fs::Recovery recovery(x.fs().journal(), x.fs().layout(),
                              x.fs().config());
  const fs::RecoveryReport report =
      recovery.recover(x.dev().durable_state());
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(report.files.size(), 1u);
  EXPECT_EQ(report.files.front().name, "b")
      << "the durably-synced rename must stick";
  EXPECT_EQ(report.files.front().size_blocks, 4u);
}

TEST(NamespaceChurnRecoveryTest, ReplaceRenameIsCrashAtomicAndRecovers) {
  // POSIX: renaming onto an existing name displaces it atomically — after
  // a durable sync, recovery must show exactly the renamed file under the
  // target name, never a vanished or doubled name.
  fs::testutil::StackFixture x(StackKind::kExt4DR);
  api::Vfs vfs(*x.stack);
  auto body = [&]() -> sim::Task {
    api::File a = api::must(
        co_await vfs.open("a", {.create = true, .extent_blocks = 32}));
    api::must(co_await a.pwrite(0, 2));
    api::must(co_await a.sync_file());
    api::File b = api::must(
        co_await vfs.open("b", {.create = true, .extent_blocks = 32}));
    api::must(co_await b.pwrite(0, 4));
    api::must(co_await b.sync_file());
    api::must(co_await vfs.rename("a", "b"));  // displaces the old "b"
    api::must(co_await a.sync_file());
    api::must(a.close());
    api::must(b.close());
  };
  x.sim().spawn("app", body());
  x.sim().run_until(500'000'000);  // quiesce

  const fs::Recovery recovery(x.fs().journal(), x.fs().layout(),
                              x.fs().config());
  const fs::RecoveryReport report =
      recovery.recover(x.dev().durable_state());
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(report.files.size(), 1u)
      << "exactly the renamed file must survive under the target name";
  EXPECT_EQ(report.files.front().name, "b");
  EXPECT_EQ(report.files.front().size_blocks, 2u)
      << "the name must resolve to the renamed file's content";
}

TEST(NamespaceChurnRecoveryTest, DurableUnlinkStaysGone) {
  fs::testutil::StackFixture x(StackKind::kExt4DR);
  api::Vfs vfs(*x.stack);
  auto body = [&]() -> sim::Task {
    api::File f = api::must(
        co_await vfs.open("victim", {.create = true, .extent_blocks = 32}));
    api::must(co_await f.pwrite(0, 2));
    api::must(co_await f.sync_file());
    api::must(co_await vfs.unlink("victim"));
    api::must(co_await f.fsync());  // commits the unlink durably
    api::must(f.close());
  };
  x.sim().spawn("app", body());
  x.sim().run_until(500'000'000);  // quiesce

  const fs::Recovery recovery(x.fs().journal(), x.fs().layout(),
                              x.fs().config());
  const fs::RecoveryReport report =
      recovery.recover(x.dev().durable_state());
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.files.empty())
      << "a durably-committed unlink must not resurrect the file";
}

// ---- 5. recovery against a live quiesced stack -----------------------------

TEST(RecoveryTest, QuiescedRecoveryMatchesLiveState) {
  // Run a workload to completion on BFS-DR, let the device drain, recover,
  // and compare the recovered namespace against the live filesystem.
  fs::testutil::StackFixture x(StackKind::kBfsDR);
  auto body = [&]() -> sim::Task {
    for (int i = 0; i < 3; ++i) {
      fs::Inode* f = nullptr;
      co_await x.fs().create("file" + std::to_string(i), f, 32);
      co_await x.fs().write(*f, 0, static_cast<std::uint32_t>(4 + 2 * i));
      co_await x.fs().fsync(*f);
    }
  };
  x.sim().spawn("app", body());
  x.sim().run_until(500'000 * 1_us);  // far past completion: fully drained

  const fs::Recovery recovery(x.fs().journal(), x.fs().layout(),
                              x.fs().config());
  const fs::RecoveryReport report =
      recovery.recover(x.dev().durable_state());
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(report.files.size(), 3u);
  for (const auto& rf : report.files) {
    const fs::Inode* live = x.fs().lookup(rf.name);
    ASSERT_NE(live, nullptr) << rf.name;
    EXPECT_EQ(rf.ino, live->ino);
    EXPECT_EQ(rf.extent_base, live->extent_base);
    EXPECT_EQ(rf.size_blocks, live->size_blocks) << rf.name;
  }
  EXPECT_GT(report.txns_replayed + report.txns_discarded, 0u);
}

TEST(RecoveryTest, EmptyImageRecoversEmptyFilesystem) {
  fs::testutil::StackFixture x(StackKind::kExt4DR);
  x.sim().run_until(1_ms);  // no workload at all
  const fs::Recovery recovery(x.fs().journal(), x.fs().layout(),
                              x.fs().config());
  const fs::RecoveryReport report =
      recovery.recover(x.dev().durable_state());
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.files.empty());
  EXPECT_EQ(report.txns_replayed, 0u);
}

// ---- 6. remount is part of every checker pass, but verify it directly ------

TEST(RemountTest, RecoveredImageRemountsAndRunsWorkloads) {
  // run_crash_check remounts internally; this asserts the scenario facts
  // so a silently-disabled remount cannot go unnoticed.
  CrashCheckOptions opt;
  opt.remount = true;
  const CrashCheckResult r =
      chk::run_crash_check(StackKind::kExt4DR, 3, 300'000 * 1_us, opt);
  EXPECT_TRUE(r.ok()) << join(r.violations);
  EXPECT_TRUE(r.workload_finished);
  EXPECT_GT(r.files_recovered, 0u);
}

}  // namespace
}  // namespace bio
