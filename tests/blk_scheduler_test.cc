// Tests for the base IO schedulers (NOOP, elevator) and request merging.
#include <gtest/gtest.h>

#include "blk/io_scheduler.h"
#include "sim/simulator.h"

namespace bio::blk {
namespace {

using flash::Lba;
using flash::Version;
using sim::Simulator;

RequestPtr wr(Simulator& sim, Lba lba, std::size_t n = 1, bool ordered = false,
              bool barrier = false, bool flush = false, bool fua = false) {
  std::vector<std::pair<Lba, Version>> blocks;
  for (std::size_t i = 0; i < n; ++i) blocks.emplace_back(lba + i, 1);
  return make_write_request(sim, std::move(blocks), ordered, barrier, flush,
                            fua);
}

TEST(NoopSchedulerTest, FifoOrder) {
  Simulator sim;
  NoopScheduler s;
  s.enqueue(wr(sim, 100));
  s.enqueue(wr(sim, 50));
  s.enqueue(wr(sim, 75));
  EXPECT_EQ(s.dequeue()->first_lba(), 100u);
  EXPECT_EQ(s.dequeue()->first_lba(), 50u);
  EXPECT_EQ(s.dequeue()->first_lba(), 75u);
  EXPECT_EQ(s.dequeue(), nullptr);
}

TEST(NoopSchedulerTest, BackMergesContiguousWrites) {
  Simulator sim;
  NoopScheduler s;
  s.enqueue(wr(sim, 10, 2));  // 10,11
  s.enqueue(wr(sim, 12, 3));  // 12,13,14 -> merges
  EXPECT_EQ(s.size(), 1u);
  RequestPtr r = s.dequeue();
  EXPECT_EQ(r->blocks.size(), 5u);
  EXPECT_EQ(r->last_lba(), 14u);
  EXPECT_EQ(r->absorbed.size(), 1u);
  EXPECT_EQ(s.stats().merges, 1u);
}

TEST(NoopSchedulerTest, NonContiguousDoesNotMerge) {
  Simulator sim;
  NoopScheduler s;
  s.enqueue(wr(sim, 10));
  s.enqueue(wr(sim, 12));
  EXPECT_EQ(s.size(), 2u);
}

TEST(NoopSchedulerTest, NoMergeAcrossFlushOrFua) {
  Simulator sim;
  NoopScheduler s;
  s.enqueue(wr(sim, 10, 1, false, false, /*flush=*/true));
  s.enqueue(wr(sim, 11));
  EXPECT_EQ(s.size(), 2u);
  s.enqueue(wr(sim, 12, 1, false, false, false, /*fua=*/true));
  EXPECT_EQ(s.size(), 3u);
}

TEST(NoopSchedulerTest, MergeInheritsOrderPreservation) {
  Simulator sim;
  NoopScheduler s;
  s.enqueue(wr(sim, 10, 1, /*ordered=*/false));
  s.enqueue(wr(sim, 11, 1, /*ordered=*/true));
  RequestPtr r = s.dequeue();
  EXPECT_TRUE(r->ordered) << "§3.3: merged request is order-preserving if "
                             "any constituent is";
}

TEST(NoopSchedulerTest, MergeRespectsSizeCap) {
  Simulator sim;
  NoopScheduler s;
  s.enqueue(wr(sim, 0, kMaxMergedBlocks - 1));
  s.enqueue(wr(sim, kMaxMergedBlocks - 1, 1));  // fits exactly
  EXPECT_EQ(s.size(), 1u);
  s.enqueue(wr(sim, kMaxMergedBlocks, 1));  // would exceed the cap
  EXPECT_EQ(s.size(), 2u);
}

TEST(NoopSchedulerTest, HasOrderedTracksQueueContents) {
  Simulator sim;
  NoopScheduler s;
  EXPECT_FALSE(s.has_ordered());
  s.enqueue(wr(sim, 10, 1, /*ordered=*/true));
  s.enqueue(wr(sim, 20));
  EXPECT_TRUE(s.has_ordered());
  (void)s.dequeue();  // removes the ordered one (FIFO)
  EXPECT_FALSE(s.has_ordered());
}

TEST(ElevatorSchedulerTest, DispatchesInAscendingLbaOrder) {
  Simulator sim;
  ElevatorScheduler s;
  s.enqueue(wr(sim, 100));
  s.enqueue(wr(sim, 20));
  s.enqueue(wr(sim, 60));
  EXPECT_EQ(s.dequeue()->first_lba(), 20u);
  EXPECT_EQ(s.dequeue()->first_lba(), 60u);
  EXPECT_EQ(s.dequeue()->first_lba(), 100u);
}

TEST(ElevatorSchedulerTest, CscanWrapsAround) {
  Simulator sim;
  ElevatorScheduler s;
  s.enqueue(wr(sim, 100));
  EXPECT_EQ(s.dequeue()->first_lba(), 100u);  // head now at 101
  s.enqueue(wr(sim, 50));
  s.enqueue(wr(sim, 200));
  EXPECT_EQ(s.dequeue()->first_lba(), 200u) << "continues upward first";
  EXPECT_EQ(s.dequeue()->first_lba(), 50u) << "then wraps";
}

TEST(ElevatorSchedulerTest, FrontAndBackMerge) {
  Simulator sim;
  ElevatorScheduler s;
  s.enqueue(wr(sim, 10, 2));  // 10,11
  s.enqueue(wr(sim, 14, 2));  // 14,15
  s.enqueue(wr(sim, 12, 2));  // 12,13 -> back-merges into [10..13]
  EXPECT_EQ(s.size(), 2u);
  s.enqueue(wr(sim, 8, 2));  // 8,9 -> front-merges into [8..13]? No:
  // front merge means the new request absorbs the existing [10..13].
  EXPECT_EQ(s.size(), 2u);
  RequestPtr r = s.dequeue();
  EXPECT_EQ(r->first_lba(), 8u);
  EXPECT_EQ(r->blocks.size(), 6u);
}

TEST(ElevatorSchedulerTest, ReadsDispatchBeforeWrites) {
  Simulator sim;
  ElevatorScheduler s;
  s.enqueue(wr(sim, 10));
  s.enqueue(make_read_request(sim, 500));
  RequestPtr r = s.dequeue();
  EXPECT_EQ(r->op, ReqOp::kRead);
}

TEST(MakeSchedulerTest, FactoryKnowsKinds) {
  EXPECT_STREQ(make_scheduler("noop")->name(), "noop");
  EXPECT_STREQ(make_scheduler("elevator")->name(), "elevator");
  EXPECT_THROW((void)make_scheduler("cfq?"), bio::CheckFailure);
}

TEST(RequestTest, BarrierImpliesOrdered) {
  Simulator sim;
  RequestPtr r = wr(sim, 1, 1, /*ordered=*/false, /*barrier=*/true);
  EXPECT_TRUE(r->ordered);
}

TEST(RequestTest, NonContiguousBlocksRejected) {
  Simulator sim;
  std::vector<std::pair<Lba, Version>> blocks{{1, 1}, {3, 2}};
  EXPECT_THROW((void)make_write_request(sim, std::move(blocks)),
               bio::CheckFailure);
}

}  // namespace
}  // namespace bio::blk
