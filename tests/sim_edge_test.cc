// Edge-case tests for the simulator substrate: wake-latency overrides,
// thread statistics, and stress interleavings.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/sync.h"

namespace bio::sim {
namespace {

using namespace bio::sim::literals;

TEST(WakeLatencyTest, PerThreadOverrideBeatsGlobal) {
  Simulator sim({.wake_latency = 100_us});
  Event ev(sim);
  SimTime hw_woke = 0, sw_woke = 0;
  auto hw = [&]() -> Task {
    co_await ev.wait();
    hw_woke = sim.now();
  };
  auto sw = [&]() -> Task {
    co_await ev.wait();
    sw_woke = sim.now();
  };
  sim.spawn("hw", hw()).wake_latency = 0;  // hardware actor
  sim.spawn("sw", sw());                   // host thread
  auto trigger = [&]() -> Task {
    co_await sim.delay(10_us);
    ev.trigger();
  };
  sim.spawn("t", trigger());
  sim.run();
  EXPECT_EQ(hw_woke, 10_us) << "override: no scheduler latency";
  EXPECT_EQ(sw_woke, 110_us) << "global wake latency applies";
}

TEST(WakeLatencyTest, OverrideCanExceedGlobal) {
  Simulator sim({.wake_latency = 1_us});
  Event ev(sim);
  SimTime woke = 0;
  auto slow = [&]() -> Task {
    co_await ev.wait();
    woke = sim.now();
  };
  sim.spawn("slow", slow()).wake_latency = 50_us;
  auto trigger = [&]() -> Task {
    ev.trigger();
    co_return;
  };
  sim.spawn("t", trigger());
  sim.run();
  EXPECT_EQ(woke, 50_us);
}

TEST(StressTest, ManyThreadsManySemaphores) {
  Simulator sim;
  Semaphore sem(sim, 3);
  int concurrent = 0, max_concurrent = 0, completed = 0;
  auto worker = [&]() -> Task {
    for (int i = 0; i < 20; ++i) {
      co_await sem.acquire();
      ++concurrent;
      max_concurrent = std::max(max_concurrent, concurrent);
      co_await sim.delay(3_us);
      --concurrent;
      sem.release();
    }
    ++completed;
  };
  for (int t = 0; t < 16; ++t) sim.spawn("w" + std::to_string(t), worker());
  sim.run();
  EXPECT_EQ(completed, 16);
  EXPECT_EQ(max_concurrent, 3) << "semaphore cap respected under stress";
}

TEST(StressTest, ChannelFanInFanOut) {
  Simulator sim;
  Channel<int> ch(sim, 4);
  int sum = 0;
  int producers_done = 0;
  auto producer = [&](int base) -> Task {
    for (int i = 0; i < 50; ++i) co_await ch.push(base + i);
    if (++producers_done == 4) ch.close();
  };
  auto consumer = [&]() -> Task {
    for (;;) {
      auto v = co_await ch.pop();
      if (!v) break;
      sum += *v;
    }
  };
  for (int p = 0; p < 4; ++p) sim.spawn("p", producer(p * 1000));
  for (int c = 0; c < 3; ++c) sim.spawn("c", consumer());
  sim.run();
  // 4 producers x 50 items: sum of (base + i).
  int expect = 0;
  for (int p = 0; p < 4; ++p)
    for (int i = 0; i < 50; ++i) expect += p * 1000 + i;
  EXPECT_EQ(sum, expect);
}

TEST(StressTest, NotifyStormDoesNotLoseWaiters) {
  Simulator sim;
  Notify n(sim);
  int rounds_done = 0;
  bool go = false;
  auto waiter = [&]() -> Task {
    for (int i = 0; i < 100; ++i) {
      while (!go) co_await n.wait();
      go = false;
      ++rounds_done;
    }
  };
  auto notifier = [&]() -> Task {
    for (int i = 0; i < 100; ++i) {
      co_await sim.delay(1_us);
      go = true;
      n.notify_all();
      n.notify_all();  // redundant notifies must be harmless
    }
  };
  sim.spawn("w", waiter());
  sim.spawn("n", notifier());
  sim.run();
  EXPECT_EQ(rounds_done, 100);
}

TEST(StatsTest, TotalContextSwitchesByPrefix) {
  Simulator sim;
  Event ev(sim);
  auto waiter = [&]() -> Task { co_await ev.wait(); };
  sim.spawn("app:0", waiter());
  sim.spawn("app:1", waiter());
  sim.spawn("dev:x", waiter());
  auto trigger = [&]() -> Task {
    co_await sim.delay(1_us);
    ev.trigger();
  };
  sim.spawn("t", trigger());
  sim.run();
  EXPECT_EQ(sim.total_context_switches("app:"), 2u);
  EXPECT_EQ(sim.total_context_switches("dev:"), 1u);
  EXPECT_EQ(sim.total_context_switches(""), 3u);
}

TEST(RunUntilTest, RepeatedSlicingPreservesDeterminism) {
  // Slicing a run into many run_until() windows must produce the same
  // final state as one run() — the crash tests rely on this.
  auto run_sliced = [](bool sliced) {
    Simulator sim;
    std::uint64_t acc = 0;
    auto body = [&]() -> Task {
      for (int i = 0; i < 200; ++i) {
        co_await sim.delay(7_us);
        acc = acc * 31 + static_cast<std::uint64_t>(i);
      }
    };
    sim.spawn("t", body());
    if (sliced) {
      for (SimTime t = 13_us; t < 3_ms; t += 13_us) sim.run_until(t);
    }
    sim.run();
    return acc;
  };
  EXPECT_EQ(run_sliced(true), run_sliced(false));
}

}  // namespace
}  // namespace bio::sim
