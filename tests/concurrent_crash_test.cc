// Concurrent multi-writer crash sweep (DESIGN.md §9): N writer coroutines
// share files through independent fds, interleave pwrite/append with the
// full sync-syscall matrix plus rename/unlink and fd churn, and the
// per-writer observations merge into one cross-writer contract
// (chk::run_concurrent_crash_check / run_concurrent_crash_sweep).
//
// The sweeps here are the regression net that caught (and now guards) the
// PR 5 stack bugs — the lost i_sync_tid/i_datasync_tid wait under group
// commit, the durability proof that missed swept writeback carriers, the
// OptFS journaled-data transaction misattribution, and the journal-space
// abort under concurrent group commit (DESIGN.md §9.2 has the ledger).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "api/vfs.h"
#include "chk/crash_check.h"
#include "fs/page_cache.h"
#include "fs/recovery.h"
#include "fs_test_util.h"

namespace bio {
namespace {

using namespace bio::sim::literals;
using chk::ConcurrentCrashOptions;
using chk::CrashCheckResult;
using chk::CrashSweepResult;
using core::StackKind;

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const std::string& s : v) out += "\n  " + s;
  return out;
}

// ---- 1. the main concurrent sweep: every stack keeps its contract ----------

class ConcurrentCrashSweepTest : public testing::TestWithParam<StackKind> {};

TEST_P(ConcurrentCrashSweepTest, CrossWriterContractHoldsAcross200Points) {
  const CrashSweepResult r = chk::run_concurrent_crash_sweep(GetParam(), 200);
  EXPECT_EQ(r.points, 200);
  EXPECT_EQ(r.failed_points, 0) << join(r.sample_violations);
  // Both crash regimes must be exercised.
  EXPECT_GT(r.quiesced_points, 0) << "no post-quiescence crash points";
  EXPECT_LT(r.quiesced_points, r.points) << "no mid-workload crash points";
  // The cross-writer facts must really be checked: ordering everywhere,
  // durable acks on every kind that claims them (incl. OptFS dsync).
  EXPECT_GT(r.order_writes_checked, 5000u);
  EXPECT_GT(r.acked_pages_checked,
            GetParam() == StackKind::kOptFs ? 500u : 2000u);
  EXPECT_GT(r.namespace_facts_checked, 500u);
  EXPECT_GT(r.renames_done, 100u) << "namespace churn went dark";
  EXPECT_GT(r.unlinks_done, 50u);
  // Concurrency-specific coverage: syncs recorded across writers/fds, fd
  // close/reopen cycles, and close() racing an in-flight sync.
  EXPECT_GT(r.syncs_recorded, 2000u);
  EXPECT_GT(r.fd_cycles, 300u) << "fd churn went dark";
  EXPECT_GT(r.closes_during_sync, 150u) << "close-during-sync went dark";
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, ConcurrentCrashSweepTest,
    testing::Values(StackKind::kExt4DR, StackKind::kBfsDR, StackKind::kBfsOD,
                    StackKind::kOptFs),
    [](const testing::TestParamInfo<StackKind>& info) {
      std::string name = core::to_string(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

// ---- 2. the legacy stack must fail under concurrency too -------------------

TEST(ConcurrentNobarrierTest, LegacyStackViolatesItsClaimedContract) {
  const CrashSweepResult r =
      chk::run_concurrent_crash_sweep(StackKind::kExt4OD, 120);
  EXPECT_GT(r.failed_points, 0)
      << "the nobarrier stack survived 120 concurrent power cuts — "
         "checker too weak";
  // Repro plumbing: every failure carries its replay coordinates, and
  // replaying them reproduces the violation exactly.
  ASSERT_FALSE(r.failures.empty());
  const CrashSweepResult::Failure& f = r.failures.front();
  EXPECT_EQ(f.crash_at, chk::sweep_crash_at(1, f.point));
  const CrashCheckResult replay =
      chk::run_concurrent_crash_check(StackKind::kExt4OD, f.seed, f.crash_at);
  EXPECT_FALSE(replay.ok()) << "failed point did not replay";
  EXPECT_EQ(replay.violations.front(), f.first_violation);
}

// ---- 3. directed regressions: the configurations that caught the bugs ------

// Each of these is the exact (config, seed, crash instant) under which the
// concurrent sweep first caught a stack bug; see DESIGN.md §9.2.

TEST(ConcurrentRegressionTest, GroupCommitDatasyncWaitBfsDR) {
  // Bug 1: a concurrent fsync's commit_metadata cleared the dirty flags;
  // a later fdatasync skipped both commit and wait while the size-bearing
  // commit was still in flight and returned — the acked size was lost.
  const CrashCheckResult r =
      chk::run_concurrent_crash_check(StackKind::kBfsDR, 42, 4'434'000);
  EXPECT_TRUE(r.ok()) << join(r.violations);
}

TEST(ConcurrentRegressionTest, GroupCommitDatasyncWaitExt4DR) {
  const CrashCheckResult r =
      chk::run_concurrent_crash_check(StackKind::kExt4DR, 110, 2'578'000);
  EXPECT_TRUE(r.ok()) << join(r.violations);
}

TEST(ConcurrentRegressionTest, SweptWritebackCarrierProofBfsDR) {
  // Bug 2: a concurrent order-point's carrier transferred and completed
  // right before a durable sync started; the lazy sweep dropped it, the
  // sync's durability proof never covered it, and no flush was issued.
  ConcurrentCrashOptions opt;
  opt.journal_blocks = 64;
  opt.wl.writers = 8;
  const CrashCheckResult r =
      chk::run_concurrent_crash_check(StackKind::kBfsDR, 76, 4'708'000, opt);
  EXPECT_TRUE(r.ok()) << join(r.violations);
}

TEST(ConcurrentRegressionTest, JournaledDataTxnAttributionOptFs) {
  // Bug 3: osync journaled a file's pages into the then-running
  // transaction but recorded nothing on the inode; a concurrent dsync
  // committed an older transaction and flushed before the data-carrying
  // records transferred — the acked data ended up behind a torn log.
  ConcurrentCrashOptions opt;
  opt.journal_blocks = 64;
  opt.wl.writers = 8;
  const CrashCheckResult r =
      chk::run_concurrent_crash_check(StackKind::kOptFs, 94, 2'943'000, opt);
  EXPECT_TRUE(r.ok()) << join(r.violations);
}

TEST(ConcurrentRegressionTest, JournalSpaceSurvivesConcurrentGroupCommit) {
  // Bug 4: a group commit over 8 writers builds JD records that approach
  // the journal size; pre-fix the reserve path aborted the process
  // ("journal accounting corrupt" / "transaction larger than the journal")
  // instead of restarting the lap and bounding the running transaction.
  for (StackKind kind : {StackKind::kExt4DR, StackKind::kBfsDR,
                         StackKind::kOptFs}) {
    ConcurrentCrashOptions opt;
    opt.journal_blocks = 48;
    opt.wl.writers = 8;
    opt.wl.ops_per_writer = 60;
    const CrashSweepResult r =
        chk::run_concurrent_crash_sweep(kind, 40, 77, opt);
    EXPECT_EQ(r.failed_points, 0)
        << core::to_string(kind) << join(r.sample_violations);
    EXPECT_GT(r.journal_wraps, 0u)
        << core::to_string(kind) << ": scenario never wrapped";
  }
}

TEST(ConcurrentRegressionTest, OversizedOsyncBatchSplitsAcrossTxns) {
  // A fully-dirty 48-page extent over a 48-block journal: a single osync
  // batch's JD (descriptor + one log block per overwrite page) would
  // exceed the journal; the batch must split across transactions instead
  // of aborting on "transaction larger than the journal".
  core::StackConfig cfg =
      fs::testutil::test_stack_config(StackKind::kOptFs);
  cfg.fs.journal_blocks = 48;
  fs::testutil::StackFixture x(StackKind::kOptFs, &cfg);
  api::Vfs vfs(*x.stack);
  auto body = [&]() -> sim::Task {
    api::File f = api::must(
        co_await vfs.open("big", {.create = true, .extent_blocks = 48}));
    api::must(co_await f.pwrite(0, 48));   // allocating: fills the extent
    api::must(co_await f.sync_file());     // osync; in-place writes
    api::must(co_await f.pwrite(0, 48));   // all 48 pages now overwrites
    api::must(co_await f.sync_file());     // must journal in split batches
    api::must(f.close());
  };
  x.sim().spawn("app", body());
  x.sim().run_until(500'000 * 1_us);  // quiesce

  EXPECT_GE(x.fs().journal().stats().commits, 3u)
      << "the oversized batch must have split across transactions";
  const fs::Recovery recovery(x.fs().journal(), x.fs().layout(),
                              x.fs().config());
  const fs::RecoveryReport report =
      recovery.recover(x.dev().durable_state());
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(report.files.size(), 1u);
  EXPECT_EQ(report.files.front().size_blocks, 48u);
}

// ---- 4. directed concurrent fsync-vs-append ordering (all four kinds) ------

class ConcurrentFsyncAppendTest : public testing::TestWithParam<StackKind> {};

TEST_P(ConcurrentFsyncAppendTest, FsyncVsAppendOrderingOnSharedFile) {
  // Writer A appends to a shared file; writer B concurrently syncs it
  // through an INDEPENDENT descriptor. For each crash instant:
  //   * durable-ack kinds (EXT4-DR, BFS-DR; direct fsync on any
  //     BarrierFS): every append completed before a returned fsync
  //     started must survive, and the recovered size must cover them;
  //   * every kind: ordering — if any append made after a returned sync
  //     survives, every append that completed before that sync started
  //     survives (the cross-writer epoch prefix).
  const StackKind kind = GetParam();
  const bool durable_acks =
      kind == StackKind::kExt4DR || kind == StackKind::kBfsDR;

  for (const sim::SimTime crash_at :
       {2'000 * 1_us, 6'000 * 1_us, 12'000 * 1_us, 25'000 * 1_us,
        60'000 * 1_us, 400'000 * 1_us}) {
    fs::testutil::StackFixture x(kind);
    api::Vfs vfs(*x.stack);

    struct Oracle {
      std::vector<flash::Version> versions;  // per page, at completion
      std::uint32_t settled = 0;
      struct Sync {
        std::uint32_t settled_at_start = 0;
        bool durable = false;
      };
      std::vector<Sync> syncs;
      fs::Inode* inode = nullptr;
    } oracle;

    auto appender = [&]() -> sim::Task {
      api::File fa = api::must(
          co_await vfs.open("shared", {.create = true, .extent_blocks = 64}));
      oracle.inode = x.fs().lookup("shared");
      api::must(co_await vfs.fsync(fa.fd()));  // settle the create
      for (int i = 0; i < 40; ++i) {
        api::Result<std::uint32_t> r = co_await fa.append(1);
        if (!r.ok()) break;
        const std::uint32_t page = static_cast<std::uint32_t>(
            vfs.offset(fa.fd()).value() - 1);
        const fs::PageCache::PageState* st =
            x.fs().page_cache().find(oracle.inode->ino, page);
        BIO_CHECK(st != nullptr);  // gtest ASSERT cannot run in a coroutine
        oracle.versions.resize(
            std::max<std::size_t>(oracle.versions.size(), page + 1), 0);
        oracle.versions[page] = st->version;
        oracle.settled = std::max(oracle.settled, page + 1);
        co_await x.sim().delay(300 * 1_us);
      }
    };
    auto syncer = [&]() -> sim::Task {
      co_await x.sim().delay(700 * 1_us);  // let the create land
      api::Result<api::File> rb = co_await vfs.open("shared", {});
      if (!rb.ok()) co_return;
      api::File fb = rb.value();
      for (int i = 0; i < 12; ++i) {
        const std::uint32_t at_start = oracle.settled;
        // Direct fsync: durable on EXT4/BarrierFS, osync semantics (order
        // + delayed durability) on OptFS.
        api::Status s = co_await fb.fsync();
        if (s.ok())
          oracle.syncs.push_back({at_start, durable_acks});
        co_await x.sim().delay(900 * 1_us);
      }
    };
    x.sim().spawn("appender", appender());
    x.sim().spawn("syncer", syncer());
    x.sim().run_until(crash_at);

    const bool quiesced = x.dev().cache().dirty_count() == 0 &&
                          x.dev().queue_depth() == 0;
    const fs::Recovery recovery(x.fs().journal(), x.fs().layout(),
                                x.fs().config());
    const fs::RecoveryReport report =
        recovery.recover(x.dev().durable_state());
    if (oracle.inode == nullptr) continue;  // crashed before the create

    auto present = [&](std::uint32_t page) {
      auto it = report.data.find(oracle.inode->lba_of_page(page));
      return it != report.data.end() && oracle.versions[page] != 0 &&
             it->second >= oracle.versions[page];
    };

    // Durable acks: everything settled before a returned fsync started.
    std::uint32_t acked = 0;
    for (const Oracle::Sync& s : oracle.syncs)
      if (s.durable) acked = std::max(acked, s.settled_at_start);
    for (std::uint32_t p = 0; p < acked; ++p)
      EXPECT_TRUE(present(p)) << core::to_string(kind) << " crash="
                              << crash_at << ": acked append page " << p
                              << " lost";
    if (acked > 0) {
      const fs::RecoveryReport::RecoveredFile* rf = nullptr;
      for (const auto& cand : report.files)
        if (cand.extent_base == oracle.inode->extent_base) rf = &cand;
      ASSERT_NE(rf, nullptr)
          << core::to_string(kind) << ": fsynced file missing";
      EXPECT_GE(rf->size_blocks, acked)
          << core::to_string(kind) << " crash=" << crash_at;
    }

    // Ordering: a surviving later append proves every pre-sync append.
    std::uint32_t max_surviving = 0;
    for (std::uint32_t p = 0; p < oracle.versions.size(); ++p)
      if (present(p)) max_surviving = p + 1;
    for (const Oracle::Sync& s : oracle.syncs) {
      if (max_surviving > s.settled_at_start) {
        for (std::uint32_t p = 0; p < s.settled_at_start; ++p)
          EXPECT_TRUE(present(p))
              << core::to_string(kind) << " crash=" << crash_at
              << ": append " << p << " lost although a later append "
              << "survived past the order point covering it";
      }
    }

    // Delayed durability: after quiescence every synced append is on
    // media regardless of kind.
    if (quiesced) {
      std::uint32_t synced = 0;
      for (const Oracle::Sync& s : oracle.syncs)
        synced = std::max(synced, s.settled_at_start);
      for (std::uint32_t p = 0; p < synced; ++p)
        EXPECT_TRUE(present(p)) << core::to_string(kind)
                                << ": synced append not durable after "
                                   "quiescence";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, ConcurrentFsyncAppendTest,
    testing::Values(StackKind::kExt4DR, StackKind::kBfsDR, StackKind::kBfsOD,
                    StackKind::kOptFs),
    [](const testing::TestParamInfo<StackKind>& info) {
      std::string name = core::to_string(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace bio
