// Tests for the device write-back cache.
#include <gtest/gtest.h>

#include "flash/cache.h"
#include "sim/simulator.h"

namespace bio::flash {
namespace {

using namespace bio::sim::literals;
using sim::Simulator;
using sim::Task;

TEST(WritebackCacheTest, InsertAssignsDenseOrders) {
  Simulator sim;
  WritebackCache cache(sim, 8);
  auto body = [&]() -> Task {
    co_await cache.insert(10, 1, 0, false);
    co_await cache.insert(20, 2, 0, false);
    co_await cache.insert(30, 3, 1, true);
  };
  sim.spawn("t", body());
  sim.run();
  EXPECT_EQ(cache.next_order(), 3u);
  EXPECT_EQ(cache.dirty_count(), 3u);
  const auto& h = cache.transfer_history();
  EXPECT_EQ(h[0].order, 0u);
  EXPECT_EQ(h[2].epoch, 1u);
  EXPECT_TRUE(h[2].barrier);
}

TEST(WritebackCacheTest, ClaimReturnsFifoOrder) {
  Simulator sim;
  WritebackCache cache(sim, 8);
  std::vector<Lba> claimed;
  auto body = [&]() -> Task {
    co_await cache.insert(10, 1, 0, false);
    co_await cache.insert(20, 2, 0, false);
    WritebackCache::Entry e;
    co_await cache.claim_next(e);
    claimed.push_back(e.lba);
    co_await cache.claim_next(e);
    claimed.push_back(e.lba);
  };
  sim.spawn("t", body());
  sim.run();
  EXPECT_EQ(claimed, (std::vector<Lba>{10, 20}));
}

TEST(WritebackCacheTest, ClaimBlocksUntilInsert) {
  Simulator sim;
  WritebackCache cache(sim, 8);
  sim::SimTime claimed_at = 0;
  auto drainer = [&]() -> Task {
    WritebackCache::Entry e;
    co_await cache.claim_next(e);
    claimed_at = sim.now();
  };
  auto writer = [&]() -> Task {
    co_await sim.delay(40_us);
    co_await cache.insert(1, 1, 0, false);
  };
  sim.spawn("d", drainer());
  sim.spawn("w", writer());
  sim.run();
  EXPECT_EQ(claimed_at, 40_us);
}

TEST(WritebackCacheTest, FullCacheBackpressuresInsert) {
  Simulator sim;
  WritebackCache cache(sim, 2);
  sim::SimTime third_insert_at = 0;
  auto writer = [&]() -> Task {
    co_await cache.insert(1, 1, 0, false);
    co_await cache.insert(2, 2, 0, false);
    co_await cache.insert(3, 3, 0, false);  // blocks: capacity 2
    third_insert_at = sim.now();
  };
  auto drainer = [&]() -> Task {
    co_await sim.delay(100_us);
    WritebackCache::Entry e;
    co_await cache.claim_next(e);
    cache.mark_drained(e.order);
  };
  sim.spawn("w", writer());
  sim.spawn("d", drainer());
  sim.run();
  EXPECT_EQ(third_insert_at, 100_us);
}

TEST(WritebackCacheTest, DrainedThroughTracksContiguousPrefix) {
  Simulator sim;
  WritebackCache cache(sim, 8);
  auto body = [&]() -> Task {
    for (int i = 0; i < 3; ++i)
      co_await cache.insert(static_cast<Lba>(i), 1, 0, false);
    WritebackCache::Entry e;
    for (int i = 0; i < 3; ++i) co_await cache.claim_next(e);
    // Drain out of order: 2 then 0; order 1 still pending.
    cache.mark_drained(2);
    cache.mark_drained(0);
  };
  sim.spawn("t", body());
  sim.run();
  EXPECT_TRUE(cache.drained_through(1));
  EXPECT_FALSE(cache.drained_through(2));
  EXPECT_FALSE(cache.drained_through(3));
  cache.mark_drained(1);
  EXPECT_TRUE(cache.drained_through(3));
}

TEST(WritebackCacheTest, WaitDrainedThroughWakes) {
  Simulator sim;
  WritebackCache cache(sim, 8);
  sim::SimTime woke_at = 0;
  auto waiter = [&]() -> Task {
    co_await cache.insert(1, 1, 0, false);
    co_await cache.wait_drained_through(1);
    woke_at = sim.now();
  };
  auto drainer = [&]() -> Task {
    WritebackCache::Entry e;
    co_await cache.claim_next(e);
    co_await sim.delay(77_us);
    cache.mark_drained(e.order);
  };
  sim.spawn("w", waiter());
  sim.spawn("d", drainer());
  sim.run();
  EXPECT_EQ(woke_at, 77_us);
}

TEST(WritebackCacheTest, LookupReturnsNewestDirtyVersion) {
  Simulator sim;
  WritebackCache cache(sim, 8);
  auto body = [&]() -> Task {
    co_await cache.insert(5, 1, 0, false);
    co_await cache.insert(5, 2, 0, false);
  };
  sim.spawn("t", body());
  sim.run();
  EXPECT_EQ(cache.lookup(5), Version{2});
  EXPECT_EQ(cache.lookup(6), std::nullopt);
}

TEST(WritebackCacheTest, LookupDropsWhenNewestDrained) {
  Simulator sim;
  WritebackCache cache(sim, 8);
  auto body = [&]() -> Task {
    co_await cache.insert(5, 1, 0, false);
    WritebackCache::Entry e;
    co_await cache.claim_next(e);
    cache.mark_drained(e.order);
  };
  sim.spawn("t", body());
  sim.run();
  EXPECT_EQ(cache.lookup(5), std::nullopt);
}

TEST(WritebackCacheTest, UndrainedEntriesSnapshotInArrivalOrder) {
  Simulator sim;
  WritebackCache cache(sim, 8);
  auto body = [&]() -> Task {
    co_await cache.insert(1, 1, 0, false);
    co_await cache.insert(2, 2, 0, false);
    co_await cache.insert(3, 3, 1, false);
    WritebackCache::Entry e;
    co_await cache.claim_next(e);
    cache.mark_drained(e.order);
  };
  sim.spawn("t", body());
  sim.run();
  auto entries = cache.undrained_entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].lba, 2u);
  EXPECT_EQ(entries[1].lba, 3u);
}

}  // namespace
}  // namespace bio::flash
