// Journaling-protocol tests: JBD2 (EXT4) baseline, BarrierFS dual-mode, and
// OptFS, incl. commit batching, page conflicts and dual-mode pipelining.
#include <gtest/gtest.h>

#include "fs/barrierfs.h"
#include "fs_test_util.h"

namespace bio::fs {
namespace {

using namespace bio::sim::literals;
using core::StackKind;
using sim::Task;
using testutil::StackFixture;
using testutil::test_stack_config;

TEST(Jbd2Test, CommitWritesJdAndJc) {
  StackFixture x(StackKind::kExt4DR);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fsync(*f);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  const Journal& j = x.fs().journal();
  EXPECT_EQ(j.stats().commits, 1u);
  ASSERT_EQ(j.commit_order().size(), 1u);
  const Txn* txn = j.commit_order()[0];
  // Buffers: root dir block + inode block.
  EXPECT_EQ(txn->buffers.size(), 2u);
  EXPECT_EQ(txn->jd_blocks.size(), 3u) << "descriptor + 2 log blocks";
  EXPECT_NE(txn->jc_block.second, 0u);
  EXPECT_TRUE(txn->flushed);
}

TEST(Jbd2Test, JournalRecordsLandInJournalRegion) {
  StackFixture x(StackKind::kExt4DR);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fsync(*f);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  const Txn* txn = x.fs().journal().commit_order()[0];
  const Layout& lo = x.fs().layout();
  for (const auto& [lba, ver] : txn->jd_blocks) {
    EXPECT_GE(lba, lo.journal_base());
    EXPECT_LT(lba, lo.inode_base());
  }
  EXPECT_LT(txn->jc_block.first, lo.inode_base());
}

TEST(Jbd2Test, GroupCommitBatchesConcurrentFsyncs) {
  StackFixture x(StackKind::kExt4DR);
  int done = 0;
  auto worker = [&](const char* name) -> Task {
    Inode* f = nullptr;
    co_await x.fs().create(name, f);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fsync(*f);
    ++done;
  };
  x.sim().spawn("a", worker("a"));
  x.sim().spawn("b", worker("b"));
  x.sim().spawn("c", worker("c"));
  x.sim().run();
  EXPECT_EQ(done, 3);
  // All three files' metadata usually lands in 1-2 transactions, not 3.
  EXPECT_LE(x.fs().journal().stats().commits, 2u);
}

TEST(Jbd2Test, NobarrierCommitIsNotDurable) {
  StackFixture x(StackKind::kExt4OD);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fsync(*f);
    // Commit retired at transfer; JC may still be in the writeback cache.
    const Txn* txn = x.fs().journal().commit_order()[0];
    EXPECT_FALSE(txn->flushed);
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(Jbd2Test, SecondFsyncWithoutChangesJustFlushes) {
  StackFixture x(StackKind::kExt4DR);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fsync(*f);
    const std::uint64_t commits = x.fs().journal().stats().commits;
    co_await x.fs().fsync(*f);  // nothing dirty
    EXPECT_EQ(x.fs().journal().stats().commits, commits)
        << "no new transaction for a clean file";
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(Jbd2Test, PageConflictBlocksApplication) {
  StackFixture x(StackKind::kExt4DR);
  // Thread A fsyncs a file; thread B dirties the same file's inode while
  // the transaction is committing: B must block (EXT4 rule).
  Inode* f = nullptr;
  auto setup = [&]() -> Task {
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
  };
  x.sim().spawn("setup", setup());
  x.sim().run();

  auto syncer = [&]() -> Task { co_await x.fs().fsync(*f); };
  auto writer = [&]() -> Task {
    co_await x.sim().delay(50_us);  // land mid-commit
    co_await x.sim().delay(5_ms);   // cross a timer tick -> metadata dirty
    co_await x.fs().write(*f, 0, 1);
  };
  x.sim().spawn("syncer", syncer());
  x.sim().spawn("writer", writer());
  x.sim().run();
  // The writer may or may not have hit the window; run a tight second
  // round where the conflict is certain.
  auto writer2 = [&]() -> Task {
    co_await x.sim().delay(10_ms);
    co_await x.fs().write(*f, 0, 1);  // dirty inode (new tick)
    auto t1 = x.fs().fsync(*f);       // commit in background thread
    co_await std::move(t1);
  };
  x.sim().spawn("w2", writer2());
  x.sim().run();
  SUCCEED();  // structural: no deadlock across conflicting commits
}

TEST(BarrierFsTest, FsyncCommitsWithSingleApplicationWakeup) {
  StackFixture x(StackKind::kBfsDR);
  sim::ThreadCtx* app = nullptr;
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    const std::uint64_t cs0 = app->context_switches;
    co_await x.fs().fsync(*f);
    EXPECT_EQ(app->context_switches - cs0, 1u)
        << "BarrierFS fsync: one sleep (until the flush thread reports "
           "durability), no Wait-on-Transfer";
  };
  app = &x.sim().spawn("app", body());
  x.sim().run();
}

TEST(BarrierFsTest, FdatasyncWithoutMetadataWakesTwice) {
  StackFixture x(StackKind::kBfsDR);
  sim::ThreadCtx* app = nullptr;
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fsync(*f);
    co_await x.fs().write(*f, 0, 1);  // same tick: data only
    const std::uint64_t cs0 = app->context_switches;
    co_await x.fs().fdatasync(*f);
    EXPECT_EQ(app->context_switches - cs0, 2u)
        << "§6.3: D transfer wait + flush wait";
  };
  app = &x.sim().spawn("app", body());
  x.sim().run();
}

TEST(BarrierFsTest, FdatabarrierDoesNotBlock) {
  StackFixture x(StackKind::kBfsDR);
  sim::ThreadCtx* app = nullptr;
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fsync(*f);
    co_await x.fs().write(*f, 0, 1);  // data only
    const std::uint64_t cs0 = app->context_switches;
    const std::uint64_t blocks0 = app->blocks;
    co_await x.fs().fdatabarrier(*f);
    EXPECT_EQ(app->context_switches - cs0, 0u);
    EXPECT_EQ(app->blocks - blocks0, 0u)
        << "fdatabarrier returns after dispatch, no sleep at all";
  };
  app = &x.sim().spawn("app", body());
  x.sim().run();
}

TEST(BarrierFsTest, FdatabarrierEnforcesEpochOrdering) {
  StackFixture x(StackKind::kBfsDR);
  flash::Lba hello_lba = 0, world_lba = 0;
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);  // "Hello"
    hello_lba = f->lba_of_page(0);
    co_await x.fs().fsync(*f);        // settle metadata
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fdatabarrier(*f);
    co_await x.fs().write(*f, 1, 1);  // "World" — next epoch
    world_lba = f->lba_of_page(1);
    co_await x.fs().fdatasync(*f);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  // Transfer history: world's epoch strictly greater than hello's.
  std::uint64_t hello_epoch = 0, world_epoch = 0;
  for (const auto& e : x.dev().transfer_history()) {
    if (e.lba == hello_lba) hello_epoch = std::max(hello_epoch, e.epoch);
    if (e.lba == world_lba) world_epoch = e.epoch;
  }
  EXPECT_GT(world_epoch, hello_epoch);
}

TEST(BarrierFsTest, FbarrierReturnsAfterDispatchNotDurability) {
  StackFixture x(StackKind::kBfsDR);
  sim::SimTime fbarrier_latency = 0;
  sim::SimTime fsync_latency = 0;
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    sim::SimTime t0 = x.sim().now();
    co_await x.fs().fbarrier(*f);
    fbarrier_latency = x.sim().now() - t0;

    co_await x.sim().delay(5_ms);
    co_await x.fs().write(*f, 1, 1);
    t0 = x.sim().now();
    co_await x.fs().fsync(*f);
    fsync_latency = x.sim().now() - t0;
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_LT(fbarrier_latency, fsync_latency / 2)
      << "ordering-only commit must be far cheaper than durability";
}

TEST(BarrierFsTest, PipelinedCommitsOverlap) {
  StackFixture x(StackKind::kBfsDR);
  // Issue many fbarrier commits from different files back-to-back; the
  // dual-mode journal should keep several committing transactions alive.
  std::size_t max_committing = 0;
  auto body = [&]() -> Task {
    std::vector<Inode*> files(6);
    for (int i = 0; i < 6; ++i) {
      Inode* f = nullptr;
      co_await x.fs().create("f" + std::to_string(i), f);
      files[static_cast<std::size_t>(i)] = f;
    }
    auto* bfs = dynamic_cast<BarrierFsJournal*>(&x.fs().journal());
    for (Inode* f : files) {
      co_await x.fs().write(*f, 0, 1);
      co_await x.fs().fbarrier(*f);
      max_committing = std::max(max_committing, bfs->committing_count());
    }
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_GE(max_committing, 2u)
      << "dual-mode journaling: >1 committing transaction in flight";
}

TEST(BarrierFsTest, MultiTxnPageConflictDoesNotBlockApplication) {
  StackFixture x(StackKind::kBfsDR);
  sim::ThreadCtx* app = nullptr;
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fbarrier(*f);  // inode buffer now in a committing txn
    co_await x.sim().delay(5_ms);  // new tick so the write dirties metadata
    const std::uint64_t blocks0 = app->blocks;
    co_await x.fs().write(*f, 0, 1);  // conflicts with committing txn
    EXPECT_EQ(app->blocks - blocks0, 0u)
        << "BarrierFS: conflict goes to the conflict-page list, the "
           "application does not block (§4.3)";
    co_await x.fs().fsync(*f);  // must still commit correctly
  };
  app = &x.sim().spawn("app", body());
  x.sim().run();
  EXPECT_GE(x.fs().journal().stats().conflicts, 0u);
}

TEST(BarrierFsTest, ConflictGatesNextCommitUntilResolved) {
  StackFixture x(StackKind::kBfsDR);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fbarrier(*f);
    co_await x.sim().delay(5_ms);
    co_await x.fs().write(*f, 0, 1);  // conflict queued
    co_await x.fs().fsync(*f);        // commit must wait for resolution
    // If we get here without deadlock the gating worked.
  };
  x.sim().spawn("t", body());
  x.sim().run();
  const auto& order = x.fs().journal().commit_order();
  ASSERT_GE(order.size(), 2u);
  // The conflicted buffer must appear in the later transaction too.
  EXPECT_FALSE(order.back()->buffers.empty());
}

TEST(OptFsTest, OsyncCommitsWithoutFlush) {
  StackFixture x(StackKind::kOptFs);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().osync(*f, true);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(x.dev().stats().flushes, 0u) << "OptFS never flushes";
  EXPECT_GE(x.fs().journal().stats().commits, 1u);
}

TEST(OptFsTest, SelectiveDataJournalingJournalsOverwrites) {
  StackFixture x(StackKind::kOptFs);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 4);
    co_await x.fs().osync(*f, true);  // allocating: written in place
    co_await x.fs().write(*f, 0, 4);  // overwrite
    co_await x.fs().osync(*f, true);  // journaled, not written in place
  };
  x.sim().spawn("t", body());
  x.sim().run();
  const auto& order = x.fs().journal().commit_order();
  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0]->journaled_data_blocks, 0u);
  EXPECT_EQ(order.back()->journaled_data_blocks, 4u)
      << "4 overwritten pages journaled selectively";
}

TEST(JournalTest, EmptyCommitDelimitsEpoch) {
  StackFixture x(StackKind::kBfsDR);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fsync(*f);
    // No dirty data, no dirty metadata: fdatabarrier still delimits.
    co_await x.fs().fdatabarrier(*f);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_GE(x.fs().journal().stats().empty_commits, 1u);
}

TEST(JournalTest, JournalWrapsAroundCircularly) {
  core::StackConfig cfg = test_stack_config(core::StackKind::kExt4DR);
  cfg.fs.journal_blocks = 16;  // tiny journal: wraps quickly
  StackFixture x(core::StackKind::kExt4DR, &cfg);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    for (int i = 0; i < 12; ++i) {
      co_await x.sim().delay(5_ms);  // new tick each round: metadata dirty
      co_await x.fs().write(*f, 0, 1);
      co_await x.fs().fsync(*f);
    }
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_GT(x.fs().journal().stats().journal_wraps, 0u);
}

}  // namespace
}  // namespace bio::fs
