// Tests for the public Stack API: configuration wiring, the syscall
// substitution table, and cross-stack latency orderings that the paper's
// results depend on.
//
// Sync intents resolve through api::SyncPolicy (the paper's §5 table as
// data); these tests issue the policy rows directly against the filesystem.
#include <gtest/gtest.h>

#include "api/sync_policy.h"
#include "fs_test_util.h"

namespace bio::core {
namespace {

using namespace bio::sim::literals;
using fs::testutil::StackFixture;
using fs::testutil::test_stack_config;
using sim::Task;

/// Issues the policy-resolved syscall for `kind`'s row and `intent`.
sim::Task issue_intent(StackFixture& x, fs::Inode& f, api::SyncIntent intent) {
  const api::SyncPolicy policy = api::SyncPolicy::for_stack(x.stack->kind());
  EXPECT_EQ(co_await api::issue(x.fs(), f, policy.resolve(intent)),
            fs::FsStatus::kOk);
}

TEST(StackConfigTest, Ext4WiresLegacyLayers) {
  StackConfig c = StackConfig::make(StackKind::kExt4DR,
                                    flash::DeviceProfile::plain_ssd());
  EXPECT_EQ(c.device.barrier_mode, flash::BarrierMode::kNone);
  EXPECT_FALSE(c.blk.epoch_scheduling);
  EXPECT_FALSE(c.blk.order_preserving_dispatch);
  EXPECT_EQ(c.fs.journal, fs::JournalKind::kJbd2);
  EXPECT_FALSE(c.fs.nobarrier);
}

TEST(StackConfigTest, Ext4OdSetsNobarrier) {
  StackConfig c = StackConfig::make(StackKind::kExt4OD,
                                    flash::DeviceProfile::plain_ssd());
  EXPECT_TRUE(c.fs.nobarrier);
}

TEST(StackConfigTest, BfsWiresBarrierLayers) {
  StackConfig c =
      StackConfig::make(StackKind::kBfsDR, flash::DeviceProfile::plain_ssd());
  EXPECT_EQ(c.device.barrier_mode, flash::BarrierMode::kInOrderRecovery);
  EXPECT_TRUE(c.blk.epoch_scheduling);
  EXPECT_TRUE(c.blk.order_preserving_dispatch);
  EXPECT_EQ(c.fs.journal, fs::JournalKind::kBarrierFs);
}

TEST(StackConfigTest, MobileDevicesGetJournalChecksums) {
  StackConfig ufs =
      StackConfig::make(StackKind::kExt4DR, flash::DeviceProfile::ufs());
  StackConfig ssd = StackConfig::make(StackKind::kExt4DR,
                                      flash::DeviceProfile::plain_ssd());
  EXPECT_TRUE(ufs.fs.journal_checksum) << "§6.3: smartphone EXT4 setup";
  EXPECT_FALSE(ssd.fs.journal_checksum);
}

TEST(StackConfigTest, BarrierPenaltyOnlyWithBarrierSupport) {
  // §6.1: plain-SSD pays 5% tPROG when barrier support is simulated.
  StackConfig bfs =
      StackConfig::make(StackKind::kBfsDR, flash::DeviceProfile::plain_ssd());
  StackConfig ext4 = StackConfig::make(StackKind::kExt4DR,
                                       flash::DeviceProfile::plain_ssd());
  EXPECT_GT(bfs.device.barrier_program_penalty, 0.0);
  EXPECT_EQ(bfs.device.barrier_mode, flash::BarrierMode::kInOrderRecovery);
  EXPECT_EQ(ext4.device.barrier_mode, flash::BarrierMode::kNone);
}

TEST(StackConfigTest, ToStringCoversAllKinds) {
  EXPECT_STREQ(to_string(StackKind::kExt4DR), "EXT4-DR");
  EXPECT_STREQ(to_string(StackKind::kExt4OD), "EXT4-OD");
  EXPECT_STREQ(to_string(StackKind::kBfsDR), "BFS-DR");
  EXPECT_STREQ(to_string(StackKind::kBfsOD), "BFS-OD");
  EXPECT_STREQ(to_string(StackKind::kOptFs), "OptFS");
}

TEST(NodeTest, MultiVolumeNodeSharesOneSimulator) {
  core::NodeConfig cfg = fs::testutil::test_node_config(
      {StackKind::kBfsDR, StackKind::kExt4DR, StackKind::kOptFs});
  Stack node(cfg);
  ASSERT_EQ(node.volume_count(), 3u);
  EXPECT_EQ(node.volume(0).kind(), StackKind::kBfsDR);
  EXPECT_EQ(node.volume(1).kind(), StackKind::kExt4DR);
  EXPECT_EQ(node.volume(2).kind(), StackKind::kOptFs);
  // One simulator drives every volume; devices/journals stay per-volume.
  EXPECT_EQ(&node.volume(0).sim(), &node.sim());
  EXPECT_EQ(&node.volume(2).sim(), &node.sim());
  EXPECT_NE(&node.volume(0).device(), &node.volume(1).device());
  EXPECT_NE(&node.volume(0).fs(), &node.volume(1).fs());
  // Heterogeneous wiring per volume.
  EXPECT_TRUE(node.volume(0).config().blk.epoch_scheduling);
  EXPECT_FALSE(node.volume(1).config().blk.epoch_scheduling);
  EXPECT_EQ(node.volume(2).config().fs.journal, fs::JournalKind::kOptFs);
  // Name lookup and the volume-0 compat accessors.
  EXPECT_EQ(node.find_volume("v1"), &node.volume(1));
  EXPECT_EQ(node.find_volume("nope"), nullptr);
  EXPECT_EQ(node.kind(), StackKind::kBfsDR);
  EXPECT_EQ(&node.fs(), &node.volume(0).fs());
}

TEST(NodeTest, VolumesRunIndependentWorkloadsOnOneClock) {
  fs::testutil::NodeFixture x({StackKind::kBfsDR, StackKind::kExt4DR});
  auto writer = [&](std::size_t v) -> Task {
    fs::Inode* f = nullptr;
    co_await x.fs(v).create("a", f);
    for (int i = 0; i < 4; ++i) {
      co_await x.fs(v).write(*f, static_cast<std::uint32_t>(i), 1);
      co_await x.fs(v).fsync(*f);
    }
    EXPECT_TRUE(x.vol(v).device().durable_state().contains(
        f->lba_of_page(3)));
  };
  x.sim().spawn("w0", writer(0));
  x.sim().spawn("w1", writer(1));
  x.sim().run();
  EXPECT_EQ(x.fs(0).stats().fsyncs, 4u);
  EXPECT_EQ(x.fs(1).stats().fsyncs, 4u);
  EXPECT_GT(x.vol(0).device().stats().writes, 0u);
  EXPECT_GT(x.vol(1).device().stats().writes, 0u);
}

TEST(StackConfigTest, VolumeConfigRoundTripsStackConfig) {
  const StackConfig c =
      StackConfig::make(StackKind::kBfsOD, flash::DeviceProfile::ufs());
  const VolumeConfig v = c.volume("logs");
  EXPECT_EQ(v.kind, c.kind);
  EXPECT_EQ(v.name, "logs");
  EXPECT_EQ(v.device.barrier_mode, c.device.barrier_mode);
  EXPECT_EQ(v.blk.epoch_scheduling, c.blk.epoch_scheduling);
  EXPECT_EQ(v.fs.journal, c.fs.journal);
  const VolumeConfig direct =
      VolumeConfig::make(StackKind::kBfsOD, flash::DeviceProfile::ufs());
  EXPECT_EQ(direct.kind, v.kind);
  EXPECT_EQ(direct.fs.journal, v.fs.journal);
}

TEST(StackTest, OrderPointMapsToFdatabarrierOnBfs) {
  StackFixture x(StackKind::kBfsDR);
  auto body = [&]() -> Task {
    fs::Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    co_await issue_intent(x, *f, api::SyncIntent::kOrder);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(x.fs().stats().fdatabarriers, 1u);
  EXPECT_EQ(x.fs().stats().fdatasyncs, 0u);
}

TEST(StackTest, OrderPointMapsToFdatasyncOnExt4) {
  StackFixture x(StackKind::kExt4DR);
  auto body = [&]() -> Task {
    fs::Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    co_await issue_intent(x, *f, api::SyncIntent::kOrder);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(x.fs().stats().fdatasyncs, 1u);
}

TEST(StackTest, DurabilityPointRelaxedOnlyOnBfsOd) {
  for (StackKind kind : {StackKind::kExt4DR, StackKind::kBfsDR}) {
    StackFixture x(kind);
    auto body = [&]() -> Task {
      fs::Inode* f = nullptr;
      co_await x.fs().create("a", f);
      co_await x.fs().write(*f, 0, 1);
      co_await issue_intent(x, *f, api::SyncIntent::kDurability);
      // Data must be durable at return for DR stacks.
      EXPECT_TRUE(x.dev().durable_state().contains(f->lba_of_page(0)))
          << to_string(kind);
    };
    x.sim().spawn("t", body());
    x.sim().run();
  }
}

TEST(StackTest, SyncFileUsesFbarrierOnBfsOd) {
  StackFixture x(StackKind::kBfsOD);
  auto body = [&]() -> Task {
    fs::Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    co_await issue_intent(x, *f, api::SyncIntent::kFullSync);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(x.fs().stats().fbarriers, 1u);
  EXPECT_EQ(x.fs().stats().fsyncs, 0u);
}

TEST(StackTest, FsyncLatencyOrderingAcrossStacks) {
  // The core latency claim: BFS-DR fsync < EXT4-DR fsync on the same
  // device, and the ordering-only commit is cheapest of all.
  auto measure = [](StackKind kind) {
    StackFixture x(kind);
    sim::SimTime result = 0;
    auto body = [&x, &result]() -> Task {
      fs::Inode* f = nullptr;
      co_await x.fs().create("a", f);
      for (int i = 0; i < 20; ++i) {
        co_await x.sim().delay(5_ms);  // fresh tick: metadata commit per op
        co_await x.fs().write(*f, static_cast<std::uint32_t>(i), 1);
        const sim::SimTime t0 = x.sim().now();
        co_await issue_intent(x, *f, api::SyncIntent::kFullSync);
        result += x.sim().now() - t0;
      }
    };
    x.sim().spawn("t", body());
    x.sim().run();
    return result / 20;
  };
  const sim::SimTime ext4_dr = measure(StackKind::kExt4DR);
  const sim::SimTime bfs_dr = measure(StackKind::kBfsDR);
  const sim::SimTime bfs_od = measure(StackKind::kBfsOD);
  EXPECT_LT(bfs_dr, ext4_dr);
  EXPECT_LT(bfs_od, bfs_dr / 2);
}

TEST(StackTest, BarrierStacksWorkOnAllBarrierModes) {
  // The block/fs layers must run correctly over every device barrier
  // implementation of §3.2, not just in-order recovery.
  for (flash::BarrierMode mode :
       {flash::BarrierMode::kInOrderRecovery,
        flash::BarrierMode::kInOrderWriteback,
        flash::BarrierMode::kTransactional}) {
    core::StackConfig cfg = test_stack_config(StackKind::kBfsDR);
    cfg.device.barrier_mode = mode;
    StackFixture x(StackKind::kBfsDR, &cfg);
    auto body = [&]() -> Task {
      fs::Inode* f = nullptr;
      co_await x.fs().create("a", f);
      for (int i = 0; i < 6; ++i) {
        co_await x.fs().write(*f, static_cast<std::uint32_t>(i), 1);
        co_await x.fs().fsync(*f);
      }
      EXPECT_TRUE(x.dev().durable_state().contains(f->lba_of_page(5)))
          << flash::to_string(mode);
    };
    x.sim().spawn("t", body());
    x.sim().run();
  }
}

TEST(StackTest, SupercapMakesDurabilityCheap) {
  core::StackConfig cfg = test_stack_config(StackKind::kExt4DR);
  cfg.device.plp = true;
  StackFixture plp(StackKind::kExt4DR, &cfg);
  StackFixture noplp(StackKind::kExt4DR);
  auto measure = [](StackFixture& x) {
    sim::SimTime latency = 0;
    auto body = [&x, &latency]() -> Task {
      fs::Inode* f = nullptr;
      co_await x.fs().create("a", f);
      co_await x.fs().write(*f, 0, 1);
      co_await x.fs().fsync(*f);
      co_await x.fs().write(*f, 0, 1);
      const sim::SimTime t0 = x.sim().now();
      co_await x.fs().fdatasync(*f);
      latency = x.sim().now() - t0;
    };
    x.sim().spawn("t", body());
    x.sim().run();
    return latency;
  };
  EXPECT_LT(measure(plp), measure(noplp) / 2)
      << "PLP flush must be far cheaper than a full drain";
}

}  // namespace
}  // namespace bio::core
