// Crash-consistency property tests (DESIGN.md §6 invariants).
//
// The device exposes durable_state() = "what recovery reconstructs if power
// fails right now". These tests cut power at arbitrary instants of random
// workloads and check the paper's ordering guarantees:
//   1. Epoch prefix durability on barrier-compliant devices.
//   2. fdatabarrier(): Hello-before-World across a crash.
//   3. Journal commit order/atomicity (JC never durable without its JD,
//      transactions durable in commit order) on the barrier stack.
//   4. An fsync that returned implies durable data (EXT4-DR, BFS-DR).
//   5. The legacy stack (nobarrier, orderless device) CAN violate ordering —
//      demonstrating the problem the paper sets out to fix.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "blk/block_layer.h"
#include "flash_test_util.h"
#include "fs_test_util.h"
#include "sim/rng.h"

namespace bio {
namespace {

using namespace bio::sim::literals;
using core::StackKind;
using flash::BarrierMode;
using flash::Lba;
using flash::Version;
using sim::Task;

// ---- invariant checkers ----------------------------------------------------

/// Epoch prefix: if any entry of epoch e persisted (its version or a later
/// one for that lba), every entry of every epoch < e must have persisted.
testing::AssertionResult epoch_prefix_holds(
    const std::vector<flash::WritebackCache::Entry>& history,
    const std::unordered_map<Lba, Version>& durable) {
  auto present = [&](const flash::WritebackCache::Entry& e) {
    auto it = durable.find(e.lba);
    return it != durable.end() && it->second >= e.version;
  };
  std::uint64_t max_durable_epoch = 0;
  bool any = false;
  for (const auto& e : history) {
    if (present(e)) {
      max_durable_epoch = std::max(max_durable_epoch, e.epoch);
      any = true;
    }
  }
  if (!any) return testing::AssertionSuccess();
  for (const auto& e : history) {
    if (e.epoch < max_durable_epoch && !present(e)) {
      return testing::AssertionFailure()
             << "entry lba=" << e.lba << " v=" << e.version << " of epoch "
             << e.epoch << " lost although epoch " << max_durable_epoch
             << " has persisted entries";
    }
  }
  return testing::AssertionSuccess();
}

// ---- 1. block-level epoch prefix across barrier modes ----------------------

class EpochPrefixTest
    : public testing::TestWithParam<std::tuple<BarrierMode, bool, int>> {};

TEST_P(EpochPrefixTest, RandomWorkloadRandomCrashPoint) {
  const auto [mode, plp, seed] = GetParam();
  sim::Simulator sim;
  flash::DeviceProfile profile = flash::testutil::test_profile(mode, plp);
  flash::StorageDevice dev(sim, profile);
  blk::BlockLayerConfig bcfg;  // order-preserving defaults
  bcfg.scheduler = "elevator";  // stress: reordering base scheduler
  blk::BlockLayer blk(sim, dev, bcfg);
  dev.start();
  blk.start();

  sim::Rng rng(static_cast<std::uint64_t>(seed));
  auto workload = [&]() -> Task {
    // Page-cache-realistic stream: a page is written at most once per
    // epoch (the kernel keeps one buffer per page), epochs of 1..8 writes.
    // The lba cycles over a 32-page working set, so overwrites happen
    // across epochs but never inside one — intra-epoch duplicate writes
    // are impossible in a real stack and would legally race.
    std::uint64_t until_barrier = rng.uniform(1, 8);
    for (int i = 0; i < 120; ++i) {
      const Lba lba = static_cast<Lba>(i % 32);
      const bool barrier = --until_barrier == 0;
      if (barrier) until_barrier = rng.uniform(1, 8);
      std::vector<std::pair<Lba, Version>> payload;
      payload.emplace_back(lba, blk.next_version());
      blk.submit(blk::make_write_request(sim, std::move(payload),
                                         /*ordered=*/true, barrier));
      if (rng.chance(0.3)) co_await sim.delay(rng.uniform(1, 300) * 1_us);
    }
  };
  sim.spawn("w", workload());

  const sim::SimTime crash_at = rng.uniform(50, 40'000) * 1_us;
  sim.run_until(crash_at);
  EXPECT_TRUE(epoch_prefix_holds(dev.transfer_history(), dev.durable_state()))
      << "mode=" << flash::to_string(mode) << " plp=" << plp
      << " seed=" << seed << " t=" << crash_at;
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, EpochPrefixTest,
    testing::Combine(testing::Values(BarrierMode::kInOrderRecovery,
                                     BarrierMode::kInOrderWriteback,
                                     BarrierMode::kTransactional),
                     testing::Values(false, true),
                     testing::Range(1, 9)),
    [](const testing::TestParamInfo<EpochPrefixTest::ParamType>& info) {
      std::string name = flash::to_string(std::get<0>(info.param));
      for (auto& c : name)
        if (c == '-') c = '_';
      return name + (std::get<1>(info.param) ? "_plp_" : "_noplp_") +
             std::to_string(std::get<2>(info.param));
    });

// ---- 2. legacy device can violate ordering ---------------------------------

TEST(OrderlessBaselineTest, LegacyStackCanLoseOrdering) {
  // kNone device + legacy dispatch: find at least one (seed, crash time)
  // where an epoch-later write persisted while an earlier one was lost.
  // This is Fig 1's motivation: the orderless IO stack gives no guarantee.
  bool violated = false;
  for (int seed = 1; seed <= 30 && !violated; ++seed) {
    sim::Simulator sim;
    flash::DeviceProfile profile =
        flash::testutil::test_profile(BarrierMode::kNone);
    profile.cache_entries = 64;
    flash::StorageDevice dev(sim, profile);
    blk::BlockLayerConfig bcfg;
    bcfg.scheduler = "elevator";  // the legacy stack reorders (CFQ-like)
    bcfg.epoch_scheduling = false;
    bcfg.order_preserving_dispatch = false;
    blk::BlockLayer blk(sim, dev, bcfg);
    dev.start();
    blk.start();
    sim::Rng rng(static_cast<std::uint64_t>(seed));
    auto workload = [&]() -> Task {
      for (int i = 0; i < 60; ++i) {
        // Intent: barrier after every write (strict order), which the
        // legacy stack ignores.
        std::vector<std::pair<Lba, Version>> payload;
        payload.emplace_back(rng.uniform(0, 15), blk.next_version());
        blk.submit(blk::make_write_request(sim, std::move(payload), true,
                                           /*barrier=*/true));
      }
      co_return;
    };
    sim.spawn("w", workload());
    sim.run_until(rng.uniform(100, 2'000) * 1_us);
    // Epochs were not honoured (device ignores barrier): reconstruct the
    // *intended* epochs (one per write, in submission = version order).
    std::vector<flash::WritebackCache::Entry> intended =
        dev.transfer_history();
    std::sort(intended.begin(), intended.end(),
              [](const auto& a, const auto& b) {
                return a.version < b.version;
              });
    for (std::uint64_t i = 0; i < intended.size(); ++i)
      intended[i].epoch = i;  // each write its own epoch, program order
    if (!epoch_prefix_holds(intended, dev.durable_state())) violated = true;
  }
  EXPECT_TRUE(violated)
      << "the orderless stack never violated ordering across 30 seeds — "
         "the baseline would be indistinguishable from the barrier stack";
}

// ---- 3. fdatabarrier Hello/World at the filesystem level -------------------

class HelloWorldTest : public testing::TestWithParam<int> {};

TEST_P(HelloWorldTest, WorldNeverPersistsWithoutHello) {
  const int seed = GetParam();
  fs::testutil::StackFixture x(StackKind::kBfsDR);
  sim::Rng rng(static_cast<std::uint64_t>(seed));

  struct Pair {
    Lba hello_lba;
    Version hello_v;
    Lba world_lba;
    Version world_v;
  };
  std::vector<Pair> pairs;

  auto body = [&]() -> Task {
    fs::Inode* f = nullptr;
    co_await x.fs().create("db", f, 64);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fsync(*f);  // settle create metadata
    for (int i = 0; i < 40; ++i) {
      const std::uint32_t hp = static_cast<std::uint32_t>(
          rng.uniform(0, 30));
      co_await x.fs().write(*f, hp, 1);
      Pair p;
      p.hello_lba = f->lba_of_page(hp);
      p.hello_v = x.fs().page_cache().find(f->ino, hp)->version;
      co_await x.fs().fdatabarrier(*f);
      const std::uint32_t wp = static_cast<std::uint32_t>(
          rng.uniform(31, 60));
      co_await x.fs().write(*f, wp, 1);
      p.world_lba = f->lba_of_page(wp);
      p.world_v = x.fs().page_cache().find(f->ino, wp)->version;
      co_await x.fs().fdatabarrier(*f);
      pairs.push_back(p);
      if (rng.chance(0.3)) co_await x.sim().delay(rng.uniform(1, 200) * 1_us);
    }
  };
  x.sim().spawn("app", body());
  x.sim().run_until(rng.uniform(200, 30'000) * 1_us);

  auto durable = x.dev().durable_state();
  auto has = [&](Lba lba, Version v) {
    auto it = durable.find(lba);
    return it != durable.end() && it->second >= v;
  };
  for (const Pair& p : pairs) {
    if (has(p.world_lba, p.world_v)) {
      EXPECT_TRUE(has(p.hello_lba, p.hello_v))
          << "World (v" << p.world_v << ") persisted without Hello (v"
          << p.hello_v << ") — fdatabarrier ordering broken";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HelloWorldTest, testing::Range(1, 13));

// ---- 4. journal commit order & atomicity -----------------------------------

class JournalCrashTest
    : public testing::TestWithParam<std::tuple<StackKind, int>> {};

TEST_P(JournalCrashTest, CommittedTransactionsFormAPrefix) {
  const auto [kind, seed] = GetParam();
  fs::testutil::StackFixture x(kind);
  sim::Rng rng(static_cast<std::uint64_t>(seed));

  auto body = [&]() -> Task {
    std::vector<fs::Inode*> files(4);
    for (int i = 0; i < 4; ++i) {
      fs::Inode* f = nullptr;
      co_await x.fs().create("f" + std::to_string(i), f, 64);
      files[static_cast<std::size_t>(i)] = f;
    }
    for (int i = 0; i < 50; ++i) {
      fs::Inode* f = files[rng.uniform(0, 3)];
      co_await x.sim().delay(5_ms);  // cross a tick: metadata dirty
      co_await x.fs().write(
          *f, static_cast<std::uint32_t>(rng.uniform(0, 60)), 1);
      if (kind == StackKind::kBfsDR && rng.chance(0.5))
        co_await x.fs().fbarrier(*f);
      else
        co_await x.fs().fsync(*f);
    }
  };
  x.sim().spawn("app", body());
  x.sim().run_until(rng.uniform(1'000, 200'000) * 1_us);

  auto durable = x.dev().durable_state();
  auto has = [&](const std::pair<Lba, Version>& blockv) {
    auto it = durable.find(blockv.first);
    return it != durable.end() && it->second >= blockv.second;
  };
  bool seen_missing = false;
  for (const fs::Txn* txn : x.fs().journal().commit_order()) {
    const bool jc_durable = has(txn->jc_block);
    if (jc_durable) {
      EXPECT_FALSE(seen_missing)
          << "txn " << txn->id << " durable after a lost predecessor — "
             "commit order violated";
      for (const auto& jd : txn->jd_blocks)
        EXPECT_TRUE(has(jd)) << "txn " << txn->id
                             << ": commit record durable but a descriptor/"
                                "log block is missing (atomicity broken)";
    } else {
      seen_missing = true;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, JournalCrashTest,
    testing::Combine(testing::Values(StackKind::kExt4DR, StackKind::kBfsDR),
                     testing::Range(1, 9)),
    [](const testing::TestParamInfo<JournalCrashTest::ParamType>& info) {
      std::string name = core::to_string(std::get<0>(info.param));
      for (auto& c : name)
        if (c == '-') c = '_';
      return name + "_" + std::to_string(std::get<1>(info.param));
    });

// ---- 5. acknowledged fsync implies durable data -----------------------------

class AckedFsyncTest
    : public testing::TestWithParam<std::tuple<StackKind, int>> {};

TEST_P(AckedFsyncTest, ReturnedFsyncIsDurableAtCrash) {
  const auto [kind, seed] = GetParam();
  fs::testutil::StackFixture x(kind);
  sim::Rng rng(static_cast<std::uint64_t>(seed));

  struct Acked {
    Lba lba;
    Version version;
  };
  std::vector<Acked> acked;

  auto body = [&]() -> Task {
    fs::Inode* f = nullptr;
    co_await x.fs().create("db", f, 64);
    for (int i = 0; i < 40; ++i) {
      const std::uint32_t p =
          static_cast<std::uint32_t>(rng.uniform(0, 50));
      co_await x.fs().write(*f, p, 1);
      const Version v = x.fs().page_cache().find(f->ino, p)->version;
      co_await x.fs().fsync(*f);
      acked.push_back({f->lba_of_page(p), v});
    }
  };
  x.sim().spawn("app", body());
  x.sim().run_until(rng.uniform(500, 100'000) * 1_us);

  auto durable = x.dev().durable_state();
  for (const Acked& a : acked) {
    auto it = durable.find(a.lba);
    const bool ok = it != durable.end() && it->second >= a.version;
    EXPECT_TRUE(ok) << core::to_string(kind)
                    << ": fsync returned for lba " << a.lba << " v"
                    << a.version << " but the data did not survive";
  }
}

INSTANTIATE_TEST_SUITE_P(
    DurabilityStacks, AckedFsyncTest,
    testing::Combine(testing::Values(StackKind::kExt4DR, StackKind::kBfsDR),
                     testing::Range(1, 9)),
    [](const testing::TestParamInfo<AckedFsyncTest::ParamType>& info) {
      std::string name = core::to_string(std::get<0>(info.param));
      for (auto& c : name)
        if (c == '-') c = '_';
      return name + "_" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace bio
