// Helpers for filesystem/stack tests: a small fast stack fixture.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/stack.h"
#include "flash_test_util.h"

namespace bio::fs::testutil {

/// StackConfig for `kind` on the tiny test device (larger than the device
/// tests' profile so filesystem workloads fit comfortably).
inline core::StackConfig test_stack_config(core::StackKind kind) {
  flash::DeviceProfile dev =
      flash::testutil::test_profile(flash::BarrierMode::kNone);
  dev.geometry.blocks_per_chip = 64;   // 4 chips * 64 * 4 = 1024 pages
  dev.queue_depth = 16;
  dev.cache_entries = 64;
  core::StackConfig cfg = core::StackConfig::make(kind, dev);
  cfg.fs.journal_blocks = 256;
  cfg.fs.max_inodes = 64;
  cfg.fs.default_extent_blocks = 64;
  cfg.fs.writeback_high_watermark = 1u << 20;  // pdflush off unless wanted
  return cfg;
}

struct StackFixture {
  std::unique_ptr<core::Stack> stack;

  explicit StackFixture(core::StackKind kind,
                        core::StackConfig* custom = nullptr) {
    core::StackConfig cfg = custom ? *custom : test_stack_config(kind);
    stack = std::make_unique<core::Stack>(cfg);
    stack->start();
  }

  sim::Simulator& sim() { return stack->sim(); }
  fs::Filesystem& fs() { return stack->fs(); }
  flash::StorageDevice& dev() { return stack->device(); }
};

/// NodeConfig with one test-sized volume per kind, named "v0", "v1", ...
inline core::NodeConfig test_node_config(
    const std::vector<core::StackKind>& kinds) {
  std::vector<core::StackConfig> bases;
  for (core::StackKind kind : kinds) bases.push_back(test_stack_config(kind));
  return core::NodeConfig::from(bases);
}

/// A started multi-volume node (volumes "v0", "v1", ... per `kinds`).
struct NodeFixture {
  std::unique_ptr<core::Stack> node;

  explicit NodeFixture(const std::vector<core::StackKind>& kinds,
                       const core::NodeConfig* custom = nullptr) {
    node = std::make_unique<core::Stack>(custom ? *custom
                                                : test_node_config(kinds));
    node->start();
  }

  sim::Simulator& sim() { return node->sim(); }
  core::Volume& vol(std::size_t i) { return node->volume(i); }
  fs::Filesystem& fs(std::size_t i) { return node->volume(i).fs(); }
};

}  // namespace bio::fs::testutil
