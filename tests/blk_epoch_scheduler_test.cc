// Tests for epoch-based IO scheduling and barrier reassignment (Fig 5).
#include <gtest/gtest.h>

#include "blk/epoch_scheduler.h"
#include "sim/simulator.h"

namespace bio::blk {
namespace {

using flash::Lba;
using flash::Version;
using sim::Simulator;

RequestPtr wr(Simulator& sim, Lba lba, bool ordered = false,
              bool barrier = false) {
  return make_write_request(sim, {{lba, 1}}, ordered, barrier);
}

TEST(EpochSchedulerTest, PassesThroughWithoutBarriers) {
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 10));
  s.enqueue(wr(sim, 30, true));
  EXPECT_EQ(s.dequeue()->first_lba(), 10u);
  EXPECT_EQ(s.dequeue()->first_lba(), 30u);
  EXPECT_FALSE(s.blocked());
  EXPECT_EQ(s.barrier_reassignments(), 0u);
}

TEST(EpochSchedulerTest, BarrierBlocksQueueAndStagesLaterRequests) {
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 10, true));
  s.enqueue(wr(sim, 30, true, /*barrier=*/true));
  EXPECT_TRUE(s.blocked());
  s.enqueue(wr(sim, 50));  // arrives while blocked: staged
  EXPECT_EQ(s.staged_count(), 1u);
  EXPECT_EQ(s.size(), 3u);
}

TEST(EpochSchedulerTest, BarrierFlagMovesToLastOrderPreservingRequest) {
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 10, true));
  s.enqueue(wr(sim, 30, true, /*barrier=*/true));
  RequestPtr first = s.dequeue();
  EXPECT_EQ(first->first_lba(), 10u);
  EXPECT_FALSE(first->barrier) << "not the last ordered request yet";
  RequestPtr second = s.dequeue();
  EXPECT_EQ(second->first_lba(), 30u);
  EXPECT_TRUE(second->barrier) << "epoch's last ordered request is barrier";
  EXPECT_FALSE(s.blocked());
  EXPECT_EQ(s.barrier_reassignments(), 1u);
}

TEST(EpochSchedulerTest, Fig5ScenarioReassignsBarrierAcrossReordering) {
  // Paper Fig 5: fsync() issues ordered w1, w2 and barrier w4; pdflush
  // issues orderless w3, w5, w6. Arrival: w1 w2 w3 w5 w4^b w6. The elevator
  // reorders; whichever ordered request leaves last carries the barrier.
  Simulator sim;
  EpochScheduler s(std::make_unique<ElevatorScheduler>());
  // LBAs chosen so the elevator dispatches w1 last (highest address).
  RequestPtr w1 = wr(sim, 50, true);
  RequestPtr w2 = wr(sim, 10, true);
  RequestPtr w3 = wr(sim, 20);
  RequestPtr w5 = wr(sim, 40);
  RequestPtr w4 = wr(sim, 30, true, /*barrier=*/true);
  RequestPtr w6 = wr(sim, 5);
  s.enqueue(w1);
  s.enqueue(w2);
  s.enqueue(w3);
  s.enqueue(w5);
  s.enqueue(w4);
  EXPECT_TRUE(s.blocked());
  s.enqueue(w6);  // queue is blocked; staged for the next epoch
  EXPECT_EQ(s.staged_count(), 1u);

  std::vector<Lba> dispatch_order;
  std::vector<bool> barrier_flags;
  for (RequestPtr r = s.dequeue(); r != nullptr; r = s.dequeue()) {
    dispatch_order.push_back(r->first_lba());
    barrier_flags.push_back(r->barrier);
  }
  // Elevator order within the epoch: 10,20,30,40,50 then staged w6 (lba 5).
  EXPECT_EQ(dispatch_order,
            (std::vector<Lba>{10, 20, 30, 40, 50, 5}));
  // w4 (lba 30) lost its barrier; w1 (lba 50) carries it now.
  EXPECT_EQ(barrier_flags,
            (std::vector<bool>{false, false, false, false, true, false}));
  EXPECT_EQ(s.barrier_reassignments(), 1u);
}

TEST(EpochSchedulerTest, OrderlessRequestsJoinFollowingEpoch) {
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 10, true, true));  // barrier epoch 0
  s.enqueue(wr(sim, 30));              // staged orderless
  s.enqueue(wr(sim, 50, true));        // staged ordered (next epoch)
  RequestPtr b = s.dequeue();
  EXPECT_TRUE(b->barrier);
  // Unblocked: staged requests entered the base queue.
  EXPECT_EQ(s.staged_count(), 0u);
  EXPECT_EQ(s.dequeue()->first_lba(), 30u);
  EXPECT_EQ(s.dequeue()->first_lba(), 50u);
}

TEST(EpochSchedulerTest, StagedBarrierReblocksQueue) {
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  // Non-contiguous LBAs so nothing merges.
  s.enqueue(wr(sim, 1, true, true));   // epoch 0 barrier
  s.enqueue(wr(sim, 20, true));        // staged: epoch 1
  s.enqueue(wr(sim, 40, true, true));  // staged: epoch 1 barrier
  s.enqueue(wr(sim, 60, true));        // staged: epoch 2
  RequestPtr b0 = s.dequeue();
  EXPECT_TRUE(b0->barrier);
  EXPECT_TRUE(s.blocked()) << "staged barrier re-blocked the queue";
  EXPECT_EQ(s.staged_count(), 1u) << "lba 60 remains staged behind epoch 1";
  RequestPtr w2 = s.dequeue();
  EXPECT_FALSE(w2->barrier) << "epoch 1 still has an ordered request queued";
  RequestPtr b1 = s.dequeue();
  EXPECT_TRUE(b1->barrier);
  EXPECT_EQ(s.dequeue()->first_lba(), 60u);
  EXPECT_EQ(s.barrier_reassignments(), 2u);
}

TEST(EpochSchedulerTest, ChainOfStagedBarriersUnblocksEpochByEpoch) {
  // Three epochs staged behind one another: each dequeue of a barrier must
  // re-block the queue and admit exactly the next epoch's requests.
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 1, true, true));    // epoch 0 barrier
  s.enqueue(wr(sim, 10, true, true));   // staged: epoch 1 barrier
  s.enqueue(wr(sim, 20, true, true));   // staged: epoch 2 barrier
  s.enqueue(wr(sim, 30, true));         // staged: epoch 3
  EXPECT_EQ(s.staged_count(), 3u);

  RequestPtr b0 = s.dequeue();
  EXPECT_TRUE(b0->barrier);
  EXPECT_TRUE(s.blocked()) << "epoch-1 barrier re-blocked on admission";
  EXPECT_EQ(s.staged_count(), 2u) << "epochs 2 and 3 remain staged";

  RequestPtr b1 = s.dequeue();
  EXPECT_TRUE(b1->barrier);
  EXPECT_EQ(b1->first_lba(), 10u);
  EXPECT_TRUE(s.blocked());
  EXPECT_EQ(s.staged_count(), 1u);

  RequestPtr b2 = s.dequeue();
  EXPECT_TRUE(b2->barrier);
  EXPECT_EQ(b2->first_lba(), 20u);
  EXPECT_FALSE(s.blocked()) << "no staged barrier left";
  EXPECT_EQ(s.dequeue()->first_lba(), 30u);
  EXPECT_EQ(s.barrier_reassignments(), 3u);
}

TEST(EpochSchedulerTest, OrderlessStagedBehindReblockedBarrierEntersBase) {
  // While blocked on a staged barrier, the re-admission loop must admit
  // orderless requests into the base queue (they are epoch-free) but hold
  // back everything behind the next staged barrier.
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 1, true, true));    // epoch 0 barrier
  s.enqueue(wr(sim, 20));               // staged orderless
  s.enqueue(wr(sim, 40, true, true));   // staged: epoch 1 barrier
  s.enqueue(wr(sim, 60));               // staged behind the epoch-1 barrier

  RequestPtr b0 = s.dequeue();
  EXPECT_TRUE(b0->barrier);
  EXPECT_TRUE(s.blocked()) << "epoch-1 barrier re-blocked the queue";
  // The orderless lba-20 request and the (stripped) barrier write joined
  // the base queue; lba 60 is still staged behind the re-blocking barrier.
  EXPECT_EQ(s.staged_count(), 1u);
  EXPECT_EQ(s.dequeue()->first_lba(), 20u);
  RequestPtr b1 = s.dequeue();
  EXPECT_EQ(b1->first_lba(), 40u);
  EXPECT_TRUE(b1->barrier);
  EXPECT_FALSE(s.blocked());
  EXPECT_EQ(s.dequeue()->first_lba(), 60u);
  EXPECT_EQ(s.dequeue(), nullptr);
}

TEST(EpochSchedulerTest, SizeCountsBaseAndStagedThroughReblocking) {
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 1, true, true));
  s.enqueue(wr(sim, 10, true, true));
  s.enqueue(wr(sim, 20, true));
  EXPECT_EQ(s.size(), 3u);
  (void)s.dequeue();  // epoch 0 barrier out; epoch-1 barrier re-blocks
  EXPECT_TRUE(s.blocked());
  EXPECT_EQ(s.size(), 2u) << "one in base (stripped barrier), one staged";
  (void)s.dequeue();
  EXPECT_EQ(s.size(), 1u);
  (void)s.dequeue();
  EXPECT_EQ(s.size(), 0u);
}

TEST(EpochSchedulerTest, StagedBarrierMayMergeIntoItsOwnEpoch) {
  // Contiguous LBAs: the epoch-1 barrier write merges with the epoch-1
  // request ahead of it. That is legal — both belong to one epoch — and the
  // merged request carries the barrier out.
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 1, true, true));  // epoch 0 barrier
  s.enqueue(wr(sim, 2, true));        // staged: epoch 1
  s.enqueue(wr(sim, 3, true, true));  // staged: epoch 1 barrier (contiguous)
  RequestPtr b0 = s.dequeue();
  EXPECT_TRUE(b0->barrier);
  RequestPtr merged = s.dequeue();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->blocks.size(), 2u);
  EXPECT_TRUE(merged->barrier) << "merged epoch-1 request is the barrier";
  EXPECT_EQ(s.dequeue(), nullptr);
}

TEST(EpochSchedulerTest, BackToBackBarriers) {
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  for (int i = 0; i < 4; ++i) s.enqueue(wr(sim, 10 + i, true, true));
  for (int i = 0; i < 4; ++i) {
    RequestPtr r = s.dequeue();
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->barrier) << "singleton epochs keep their barrier";
  }
  EXPECT_EQ(s.dequeue(), nullptr);
}

TEST(EpochSchedulerTest, MergingWithinEpochKeepsSingleBarrier) {
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 10, true));
  s.enqueue(wr(sim, 11, true));       // merges with 10
  s.enqueue(wr(sim, 20, true, true)); // barrier
  RequestPtr merged = s.dequeue();
  EXPECT_EQ(merged->blocks.size(), 2u);
  EXPECT_FALSE(merged->barrier);
  RequestPtr b = s.dequeue();
  EXPECT_TRUE(b->barrier);
}

// ---- cross-queue fence bookkeeping (multi-queue stacks) --------------------

constexpr std::uint64_t kNoPending = ~std::uint64_t{0};

TEST(EpochFenceTest, StampsEveryRequestAndClosesEpochsAtBarriers) {
  Simulator sim;
  EpochFence fence(sim);
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.set_fence(&fence);
  RequestPtr w1 = wr(sim, 10, true);
  RequestPtr b = wr(sim, 30, true, /*barrier=*/true);
  RequestPtr w2 = wr(sim, 50, true);
  RequestPtr orderless = wr(sim, 70);
  RequestPtr rd = make_read_request(sim, 90);
  s.enqueue(w1);
  s.enqueue(b);
  s.enqueue(w2);         // staged behind the barrier, but stamped at enqueue
  s.enqueue(orderless);  // stamped too: epoch order must match enqueue order
  s.enqueue(rd);
  EXPECT_EQ(w1->fence_epoch, 0u);
  EXPECT_EQ(b->fence_epoch, 0u) << "a barrier takes the epoch it closes";
  EXPECT_EQ(w2->fence_epoch, 1u) << "post-barrier enqueue joins the new epoch";
  EXPECT_EQ(orderless->fence_epoch, 1u)
      << "orderless writes carry the open epoch, never a stale 0";
  EXPECT_EQ(rd->fence_epoch, 1u) << "reads are stamped for device fencing";
  EXPECT_EQ(fence.epochs_closed(), 1u);
  EXPECT_EQ(fence.current(), 1u);
}

TEST(EpochFenceTest, MinPendingTracksEnqueueToSubmission) {
  // A stamp gates peer barriers from enqueue until note_submitted() — in
  // particular, a request popped from the scheduler but not yet accepted by
  // the device must still count as pending.
  Simulator sim;
  EpochFence fence(sim);
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.set_fence(&fence);
  EXPECT_EQ(s.min_pending_fence_epoch(), kNoPending) << "idle queue";

  s.enqueue(wr(sim, 10, true, /*barrier=*/true));  // epoch 0
  s.enqueue(wr(sim, 30, true));                    // staged, epoch 1
  EXPECT_EQ(s.min_pending_fence_epoch(), 0u);

  RequestPtr b = s.dequeue();
  EXPECT_TRUE(b->barrier);
  EXPECT_EQ(s.min_pending_fence_epoch(), 0u) << "popped is not submitted";
  s.note_submitted(*b);
  EXPECT_EQ(s.min_pending_fence_epoch(), 1u) << "epoch-1 write still queued";

  RequestPtr w = s.dequeue();
  s.note_submitted(*w);
  EXPECT_EQ(s.min_pending_fence_epoch(), kNoPending);
}

TEST(EpochFenceTest, OrderlessWritesGateUntilSubmission) {
  // Orderless writes are tracked too: a merge can fold ordered payload into
  // one (§3.3 keeps merges ordering-preserving), so every write must gate
  // peer barriers from enqueue until it reaches the device.
  Simulator sim;
  EpochFence fence(sim);
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.set_fence(&fence);
  s.enqueue(wr(sim, 10));
  EXPECT_EQ(s.min_pending_fence_epoch(), 0u);
  RequestPtr r = s.dequeue();
  EXPECT_EQ(s.min_pending_fence_epoch(), 0u) << "popped is not submitted";
  s.note_submitted(*r);
  EXPECT_EQ(s.min_pending_fence_epoch(), kNoPending);
}

TEST(EpochFenceTest, ReadsAreStampedButNeverGate) {
  Simulator sim;
  EpochFence fence(sim);
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.set_fence(&fence);
  RequestPtr rd = make_read_request(sim, 10);
  s.enqueue(rd);
  EXPECT_EQ(s.min_pending_fence_epoch(), kNoPending);
  RequestPtr r = s.dequeue();
  s.note_submitted(*r);  // must be a no-op, not an untracked-stamp failure
  EXPECT_EQ(s.min_pending_fence_epoch(), kNoPending);
}

TEST(EpochFenceTest, FencedBarrierIsHeldNotReassigned) {
  // The last ordered request of the closing window was enqueued under an
  // older epoch than the barrier (a peer queue's barrier closed an epoch in
  // between). Reassigning the flag onto it would make one command both
  // old-epoch data (must transfer before the intervening peer barrier) and
  // the new epoch's delimiter (must transfer after that barrier's payload).
  // Under a fence the barrier is therefore held aside: the older write
  // dispatches first with its true stamp, then the barrier with its own.
  Simulator sim;
  EpochFence fence(sim);
  EpochScheduler s(std::make_unique<ElevatorScheduler>());
  s.set_fence(&fence);
  RequestPtr w = wr(sim, 50, true);  // stamped with epoch 0
  s.enqueue(w);
  (void)fence.close_epoch();  // a peer queue's barrier closes epoch 0
  RequestPtr b = wr(sim, 10, true, /*barrier=*/true);  // closes epoch 1
  s.enqueue(b);
  EXPECT_EQ(b->fence_epoch, 1u);
  EXPECT_TRUE(s.blocked());

  RequestPtr first = s.dequeue();
  EXPECT_EQ(first->first_lba(), 50u) << "epoch-0 write drains first";
  EXPECT_FALSE(first->barrier) << "the flag never migrates under a fence";
  EXPECT_EQ(first->fence_epoch, 0u) << "and it keeps its true stamp";
  RequestPtr barrier = s.dequeue();
  EXPECT_EQ(barrier->first_lba(), 10u);
  EXPECT_TRUE(barrier->barrier);
  EXPECT_EQ(barrier->fence_epoch, 1u);
  EXPECT_FALSE(s.blocked());
  EXPECT_EQ(s.barrier_reassignments(), 0u);
  EXPECT_EQ(s.min_pending_fence_epoch(), 0u) << "both popped, none submitted";
  s.note_submitted(*first);
  EXPECT_EQ(s.min_pending_fence_epoch(), 1u)
      << "the old stamp gated peers until the write reached the device";
  s.note_submitted(*barrier);
  EXPECT_EQ(s.min_pending_fence_epoch(), kNoPending);
}

TEST(EpochFenceTest, HeldBarrierWaitsForOrderlessWritesToo) {
  // The held barrier leaves only once the base queue fully drained: an
  // orderless write enqueued before the barrier holds a (tracked) stamp,
  // and letting the barrier jump it would let a lower-epoch peer barrier
  // gate on work stuck behind this queue's own gating barrier — a cycle.
  Simulator sim;
  EpochFence fence(sim);
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.set_fence(&fence);
  s.enqueue(wr(sim, 10));                       // orderless, epoch 0
  s.enqueue(wr(sim, 30, true, /*barrier=*/true));  // closes epoch 0
  RequestPtr first = s.dequeue();
  EXPECT_EQ(first->first_lba(), 10u) << "orderless write leaves first";
  RequestPtr b = s.dequeue();
  EXPECT_TRUE(b->barrier);
  EXPECT_EQ(b->first_lba(), 30u);
}

TEST(EpochFenceTest, MergingNeverCrossesFenceEpochs) {
  // Two contiguous writes separated by a peer queue's epoch close: merging
  // them would give both payloads one stamp — either promoting old-epoch
  // data past the peer barrier or pulling new-epoch data below it. The
  // merge must be refused; both dispatch (and retire) independently.
  Simulator sim;
  EpochFence fence(sim);
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.set_fence(&fence);
  RequestPtr w1 = wr(sim, 10, true);  // epoch 0
  s.enqueue(w1);
  (void)fence.close_epoch();          // peer barrier closes epoch 0
  RequestPtr w2 = wr(sim, 11, true);  // contiguous, but epoch 1
  s.enqueue(w2);
  EXPECT_EQ(s.size(), 2u) << "cross-epoch merge refused";
  RequestPtr a = s.dequeue();
  RequestPtr b = s.dequeue();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->fence_epoch, 0u);
  EXPECT_EQ(b->fence_epoch, 1u);
  s.note_submitted(*a);
  EXPECT_EQ(s.min_pending_fence_epoch(), 1u);
  s.note_submitted(*b);
  EXPECT_EQ(s.min_pending_fence_epoch(), kNoPending);
}

TEST(EpochFenceTest, FrontMergeAcrossEpochsRefused) {
  // Elevator front-merge absorbs the *earlier*-enqueued request into the
  // later one. Across a peer epoch close that would retire the absorbed
  // (lower) stamp at carrier dequeue — before any data reaches the device —
  // and transfer the old-epoch payload under the new stamp. Refused.
  Simulator sim;
  EpochFence fence(sim);
  EpochScheduler s(std::make_unique<ElevatorScheduler>());
  s.set_fence(&fence);
  RequestPtr w1 = wr(sim, 11, true);  // epoch 0
  s.enqueue(w1);
  (void)fence.close_epoch();          // peer barrier closes epoch 0
  RequestPtr w2 = wr(sim, 10, true);  // front-merge candidate, epoch 1
  s.enqueue(w2);
  EXPECT_EQ(s.size(), 2u) << "cross-epoch front-merge refused";
  RequestPtr a = s.dequeue();
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->absorbed.empty());
  EXPECT_EQ(s.min_pending_fence_epoch(), 0u)
      << "the epoch-0 stamp still gates peers";
}

TEST(EpochFenceTest, OrderlessCarrierAbsorbingOrderedRetiresCleanly) {
  // An orderless write absorbs a same-epoch ordered write (§3.3 merges keep
  // ordering: the carrier turns ordered). Both stamps are tracked, so the
  // absorbed one retires at dequeue and the carrier's at submission — no
  // untracked-stamp abort, no peer gate opening early.
  Simulator sim;
  EpochFence fence(sim);
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.set_fence(&fence);
  RequestPtr carrier = wr(sim, 10);     // orderless, epoch 0
  RequestPtr ordered = wr(sim, 11, true);  // merges into lba 10
  s.enqueue(carrier);
  s.enqueue(ordered);
  EXPECT_EQ(s.size(), 1u) << "same-epoch merge allowed";
  RequestPtr merged = s.dequeue();
  ASSERT_NE(merged, nullptr);
  EXPECT_TRUE(merged->ordered) << "merge keeps ordering";
  EXPECT_EQ(merged->blocks.size(), 2u);
  EXPECT_EQ(s.min_pending_fence_epoch(), 0u) << "carrier still pending";
  s.note_submitted(*merged);
  EXPECT_EQ(s.min_pending_fence_epoch(), kNoPending);
}

TEST(EpochFenceTest, AbsorbedStampsRetireWithTheirCarrier) {
  // A merged request leaves the queue inside its carrier: its stamp retires
  // at dequeue (it can never be submitted on its own), and only the
  // carrier's own stamp stays pending until submission.
  Simulator sim;
  EpochFence fence(sim);
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.set_fence(&fence);
  s.enqueue(wr(sim, 10, true));
  s.enqueue(wr(sim, 11, true));  // merges into lba 10
  EXPECT_EQ(s.min_pending_fence_epoch(), 0u);
  RequestPtr merged = s.dequeue();
  ASSERT_EQ(merged->blocks.size(), 2u);
  EXPECT_EQ(s.min_pending_fence_epoch(), 0u) << "carrier still pending";
  s.note_submitted(*merged);
  EXPECT_EQ(s.min_pending_fence_epoch(), kNoPending)
      << "absorbed stamp retired at dequeue, carrier stamp at submission";
}

TEST(EpochFenceTest, WithoutFenceNothingIsStampedOrTracked) {
  // Single-queue stacks attach no fence: requests keep epoch 0 and the
  // pending map stays empty — the bit-identity precondition.
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 10, true));
  s.enqueue(wr(sim, 30, true, /*barrier=*/true));
  RequestPtr w = s.dequeue();
  RequestPtr b = s.dequeue();
  EXPECT_EQ(w->fence_epoch, 0u);
  EXPECT_EQ(b->fence_epoch, 0u);
  EXPECT_EQ(s.min_pending_fence_epoch(), kNoPending);
}

}  // namespace
}  // namespace bio::blk
