// Tests for epoch-based IO scheduling and barrier reassignment (Fig 5).
#include <gtest/gtest.h>

#include "blk/epoch_scheduler.h"
#include "sim/simulator.h"

namespace bio::blk {
namespace {

using flash::Lba;
using flash::Version;
using sim::Simulator;

RequestPtr wr(Simulator& sim, Lba lba, bool ordered = false,
              bool barrier = false) {
  return make_write_request(sim, {{lba, 1}}, ordered, barrier);
}

TEST(EpochSchedulerTest, PassesThroughWithoutBarriers) {
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 10));
  s.enqueue(wr(sim, 30, true));
  EXPECT_EQ(s.dequeue()->first_lba(), 10u);
  EXPECT_EQ(s.dequeue()->first_lba(), 30u);
  EXPECT_FALSE(s.blocked());
  EXPECT_EQ(s.barrier_reassignments(), 0u);
}

TEST(EpochSchedulerTest, BarrierBlocksQueueAndStagesLaterRequests) {
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 10, true));
  s.enqueue(wr(sim, 30, true, /*barrier=*/true));
  EXPECT_TRUE(s.blocked());
  s.enqueue(wr(sim, 50));  // arrives while blocked: staged
  EXPECT_EQ(s.staged_count(), 1u);
  EXPECT_EQ(s.size(), 3u);
}

TEST(EpochSchedulerTest, BarrierFlagMovesToLastOrderPreservingRequest) {
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 10, true));
  s.enqueue(wr(sim, 30, true, /*barrier=*/true));
  RequestPtr first = s.dequeue();
  EXPECT_EQ(first->first_lba(), 10u);
  EXPECT_FALSE(first->barrier) << "not the last ordered request yet";
  RequestPtr second = s.dequeue();
  EXPECT_EQ(second->first_lba(), 30u);
  EXPECT_TRUE(second->barrier) << "epoch's last ordered request is barrier";
  EXPECT_FALSE(s.blocked());
  EXPECT_EQ(s.barrier_reassignments(), 1u);
}

TEST(EpochSchedulerTest, Fig5ScenarioReassignsBarrierAcrossReordering) {
  // Paper Fig 5: fsync() issues ordered w1, w2 and barrier w4; pdflush
  // issues orderless w3, w5, w6. Arrival: w1 w2 w3 w5 w4^b w6. The elevator
  // reorders; whichever ordered request leaves last carries the barrier.
  Simulator sim;
  EpochScheduler s(std::make_unique<ElevatorScheduler>());
  // LBAs chosen so the elevator dispatches w1 last (highest address).
  RequestPtr w1 = wr(sim, 50, true);
  RequestPtr w2 = wr(sim, 10, true);
  RequestPtr w3 = wr(sim, 20);
  RequestPtr w5 = wr(sim, 40);
  RequestPtr w4 = wr(sim, 30, true, /*barrier=*/true);
  RequestPtr w6 = wr(sim, 5);
  s.enqueue(w1);
  s.enqueue(w2);
  s.enqueue(w3);
  s.enqueue(w5);
  s.enqueue(w4);
  EXPECT_TRUE(s.blocked());
  s.enqueue(w6);  // queue is blocked; staged for the next epoch
  EXPECT_EQ(s.staged_count(), 1u);

  std::vector<Lba> dispatch_order;
  std::vector<bool> barrier_flags;
  for (RequestPtr r = s.dequeue(); r != nullptr; r = s.dequeue()) {
    dispatch_order.push_back(r->first_lba());
    barrier_flags.push_back(r->barrier);
  }
  // Elevator order within the epoch: 10,20,30,40,50 then staged w6 (lba 5).
  EXPECT_EQ(dispatch_order,
            (std::vector<Lba>{10, 20, 30, 40, 50, 5}));
  // w4 (lba 30) lost its barrier; w1 (lba 50) carries it now.
  EXPECT_EQ(barrier_flags,
            (std::vector<bool>{false, false, false, false, true, false}));
  EXPECT_EQ(s.barrier_reassignments(), 1u);
}

TEST(EpochSchedulerTest, OrderlessRequestsJoinFollowingEpoch) {
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 10, true, true));  // barrier epoch 0
  s.enqueue(wr(sim, 30));              // staged orderless
  s.enqueue(wr(sim, 50, true));        // staged ordered (next epoch)
  RequestPtr b = s.dequeue();
  EXPECT_TRUE(b->barrier);
  // Unblocked: staged requests entered the base queue.
  EXPECT_EQ(s.staged_count(), 0u);
  EXPECT_EQ(s.dequeue()->first_lba(), 30u);
  EXPECT_EQ(s.dequeue()->first_lba(), 50u);
}

TEST(EpochSchedulerTest, StagedBarrierReblocksQueue) {
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  // Non-contiguous LBAs so nothing merges.
  s.enqueue(wr(sim, 1, true, true));   // epoch 0 barrier
  s.enqueue(wr(sim, 20, true));        // staged: epoch 1
  s.enqueue(wr(sim, 40, true, true));  // staged: epoch 1 barrier
  s.enqueue(wr(sim, 60, true));        // staged: epoch 2
  RequestPtr b0 = s.dequeue();
  EXPECT_TRUE(b0->barrier);
  EXPECT_TRUE(s.blocked()) << "staged barrier re-blocked the queue";
  EXPECT_EQ(s.staged_count(), 1u) << "lba 60 remains staged behind epoch 1";
  RequestPtr w2 = s.dequeue();
  EXPECT_FALSE(w2->barrier) << "epoch 1 still has an ordered request queued";
  RequestPtr b1 = s.dequeue();
  EXPECT_TRUE(b1->barrier);
  EXPECT_EQ(s.dequeue()->first_lba(), 60u);
  EXPECT_EQ(s.barrier_reassignments(), 2u);
}

TEST(EpochSchedulerTest, ChainOfStagedBarriersUnblocksEpochByEpoch) {
  // Three epochs staged behind one another: each dequeue of a barrier must
  // re-block the queue and admit exactly the next epoch's requests.
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 1, true, true));    // epoch 0 barrier
  s.enqueue(wr(sim, 10, true, true));   // staged: epoch 1 barrier
  s.enqueue(wr(sim, 20, true, true));   // staged: epoch 2 barrier
  s.enqueue(wr(sim, 30, true));         // staged: epoch 3
  EXPECT_EQ(s.staged_count(), 3u);

  RequestPtr b0 = s.dequeue();
  EXPECT_TRUE(b0->barrier);
  EXPECT_TRUE(s.blocked()) << "epoch-1 barrier re-blocked on admission";
  EXPECT_EQ(s.staged_count(), 2u) << "epochs 2 and 3 remain staged";

  RequestPtr b1 = s.dequeue();
  EXPECT_TRUE(b1->barrier);
  EXPECT_EQ(b1->first_lba(), 10u);
  EXPECT_TRUE(s.blocked());
  EXPECT_EQ(s.staged_count(), 1u);

  RequestPtr b2 = s.dequeue();
  EXPECT_TRUE(b2->barrier);
  EXPECT_EQ(b2->first_lba(), 20u);
  EXPECT_FALSE(s.blocked()) << "no staged barrier left";
  EXPECT_EQ(s.dequeue()->first_lba(), 30u);
  EXPECT_EQ(s.barrier_reassignments(), 3u);
}

TEST(EpochSchedulerTest, OrderlessStagedBehindReblockedBarrierEntersBase) {
  // While blocked on a staged barrier, the re-admission loop must admit
  // orderless requests into the base queue (they are epoch-free) but hold
  // back everything behind the next staged barrier.
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 1, true, true));    // epoch 0 barrier
  s.enqueue(wr(sim, 20));               // staged orderless
  s.enqueue(wr(sim, 40, true, true));   // staged: epoch 1 barrier
  s.enqueue(wr(sim, 60));               // staged behind the epoch-1 barrier

  RequestPtr b0 = s.dequeue();
  EXPECT_TRUE(b0->barrier);
  EXPECT_TRUE(s.blocked()) << "epoch-1 barrier re-blocked the queue";
  // The orderless lba-20 request and the (stripped) barrier write joined
  // the base queue; lba 60 is still staged behind the re-blocking barrier.
  EXPECT_EQ(s.staged_count(), 1u);
  EXPECT_EQ(s.dequeue()->first_lba(), 20u);
  RequestPtr b1 = s.dequeue();
  EXPECT_EQ(b1->first_lba(), 40u);
  EXPECT_TRUE(b1->barrier);
  EXPECT_FALSE(s.blocked());
  EXPECT_EQ(s.dequeue()->first_lba(), 60u);
  EXPECT_EQ(s.dequeue(), nullptr);
}

TEST(EpochSchedulerTest, SizeCountsBaseAndStagedThroughReblocking) {
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 1, true, true));
  s.enqueue(wr(sim, 10, true, true));
  s.enqueue(wr(sim, 20, true));
  EXPECT_EQ(s.size(), 3u);
  (void)s.dequeue();  // epoch 0 barrier out; epoch-1 barrier re-blocks
  EXPECT_TRUE(s.blocked());
  EXPECT_EQ(s.size(), 2u) << "one in base (stripped barrier), one staged";
  (void)s.dequeue();
  EXPECT_EQ(s.size(), 1u);
  (void)s.dequeue();
  EXPECT_EQ(s.size(), 0u);
}

TEST(EpochSchedulerTest, StagedBarrierMayMergeIntoItsOwnEpoch) {
  // Contiguous LBAs: the epoch-1 barrier write merges with the epoch-1
  // request ahead of it. That is legal — both belong to one epoch — and the
  // merged request carries the barrier out.
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 1, true, true));  // epoch 0 barrier
  s.enqueue(wr(sim, 2, true));        // staged: epoch 1
  s.enqueue(wr(sim, 3, true, true));  // staged: epoch 1 barrier (contiguous)
  RequestPtr b0 = s.dequeue();
  EXPECT_TRUE(b0->barrier);
  RequestPtr merged = s.dequeue();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->blocks.size(), 2u);
  EXPECT_TRUE(merged->barrier) << "merged epoch-1 request is the barrier";
  EXPECT_EQ(s.dequeue(), nullptr);
}

TEST(EpochSchedulerTest, BackToBackBarriers) {
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  for (int i = 0; i < 4; ++i) s.enqueue(wr(sim, 10 + i, true, true));
  for (int i = 0; i < 4; ++i) {
    RequestPtr r = s.dequeue();
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->barrier) << "singleton epochs keep their barrier";
  }
  EXPECT_EQ(s.dequeue(), nullptr);
}

TEST(EpochSchedulerTest, MergingWithinEpochKeepsSingleBarrier) {
  Simulator sim;
  EpochScheduler s(std::make_unique<NoopScheduler>());
  s.enqueue(wr(sim, 10, true));
  s.enqueue(wr(sim, 11, true));       // merges with 10
  s.enqueue(wr(sim, 20, true, true)); // barrier
  RequestPtr merged = s.dequeue();
  EXPECT_EQ(merged->blocks.size(), 2u);
  EXPECT_FALSE(merged->barrier);
  RequestPtr b = s.dequeue();
  EXPECT_TRUE(b->barrier);
}

}  // namespace
}  // namespace bio::blk
