// Tests for the slab/freelist RequestPool: recycling behaviour, embedded
// completion events, allocation statistics, BlockList small-buffer storage,
// and the iterative trigger_absorbed worklist.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "blk/request_pool.h"
#include "sim/simulator.h"

namespace bio::blk {
namespace {

using flash::Lba;
using flash::Version;
using sim::Simulator;

TEST(RequestPoolTest, RecyclesReleasedRequests) {
  Simulator sim;
  RequestPool pool(sim);
  Request* raw;
  {
    RequestPtr r = pool.make_write({{10, 1}});
    raw = r.get();
    EXPECT_EQ(pool.stats().acquired, 1u);
    EXPECT_EQ(pool.stats().fresh_requests, 1u);
    EXPECT_EQ(pool.free_count(), 0u);
  }
  EXPECT_EQ(pool.free_count(), 1u) << "released request must park";
  RequestPtr r2 = pool.make_read(42);
  EXPECT_EQ(r2.get(), raw) << "freelist must hand back the same object";
  EXPECT_EQ(pool.stats().recycled, 1u);
  EXPECT_EQ(pool.stats().fresh_requests, 1u) << "no second slab entry";
  EXPECT_EQ(r2->op, ReqOp::kRead);
  EXPECT_EQ(r2->read_lba, 42u);
  EXPECT_TRUE(r2->blocks.empty()) << "recycled payload must be scrubbed";
  EXPECT_TRUE(r2->absorbed.empty());
}

TEST(RequestPoolTest, SteadyStateCostsNoAllocations) {
  Simulator sim;
  RequestPool pool(sim);
  // Warm-up: one request teaches the pool its slab + control-block sizes.
  { RequestPtr r = pool.make_write({{1, 1}}); }
  const auto warm = pool.stats();
  for (int i = 0; i < 1000; ++i) {
    RequestPtr r = pool.make_write({{Lba(i), Version(i)}});
    r->completion.trigger();
  }
  const auto& s = pool.stats();
  EXPECT_EQ(s.fresh_requests, warm.fresh_requests)
      << "steady-state churn must not grow the slab";
  EXPECT_EQ(s.ctrl_allocs, warm.ctrl_allocs)
      << "control blocks must recycle";
  EXPECT_EQ(s.block_heap_allocs, 0u) << "one-block payloads stay inline";
  EXPECT_LT(s.allocs_per_request(), 0.01);
}

TEST(RequestPoolTest, EmbeddedEventRearmsAcrossReuse) {
  Simulator sim;
  RequestPool pool(sim);
  {
    RequestPtr r = pool.make_flush();
    r->completion.trigger();
    EXPECT_TRUE(r->completion.is_set());
  }
  RequestPtr r2 = pool.make_flush();
  EXPECT_FALSE(r2->completion.is_set())
      << "recycled completion event must be re-armed";
}

TEST(RequestPoolTest, ConcurrentRequestsGetDistinctSlots) {
  Simulator sim;
  RequestPool pool(sim);
  std::vector<RequestPtr> live;
  for (int i = 0; i < 64; ++i)
    live.push_back(pool.make_write({{Lba(i * 2), 1}}));
  for (int i = 0; i < 64; ++i)
    for (int j = i + 1; j < 64; ++j) EXPECT_NE(live[i].get(), live[j].get());
  EXPECT_EQ(pool.slab_size(), 64u);
  live.clear();
  EXPECT_EQ(pool.free_count(), 64u);
}

TEST(RequestPoolTest, PoolOutlivesHandleWhileRequestsLive) {
  // The Impl is shared-ownership: dropping the RequestPool object while
  // requests are outstanding must not dangle their slab.
  Simulator sim;
  RequestPtr r;
  {
    RequestPool pool(sim);
    r = pool.make_write({{7, 3}});
  }
  EXPECT_EQ(r->first_lba(), 7u);
  r->completion.trigger();
  r.reset();  // releases into the (still-alive) Impl, then frees everything
}

TEST(RequestPoolTest, ValidatesContiguousBlocks) {
  Simulator sim;
  RequestPool pool(sim);
  std::vector<Block> blocks{{1, 1}, {3, 2}};
  EXPECT_THROW((void)pool.make_write(std::span<const Block>(blocks)),
               bio::CheckFailure);
}

TEST(BlockListTest, SpillsToHeapAndKeepsCapacityAcrossClears) {
  BlockList list;
  for (std::uint32_t i = 0; i < BlockList::kInlineBlocks; ++i)
    list.push_back({i, 1});
  EXPECT_EQ(list.take_heap_allocs(), 0u) << "inline fill must not allocate";
  list.push_back({BlockList::kInlineBlocks, 1});
  EXPECT_EQ(list.size(), BlockList::kInlineBlocks + 1);
  EXPECT_GT(list.take_heap_allocs(), 0u) << "spill must be counted";
  for (std::uint32_t i = 0; i < list.size(); ++i)
    EXPECT_EQ(list[i].first, Lba(i)) << "spill must preserve order";

  const std::size_t n = list.size();
  list.clear();
  EXPECT_TRUE(list.empty());
  for (std::uint32_t i = 0; i < n; ++i) list.push_back({i, 2});
  EXPECT_EQ(list.take_heap_allocs(), 0u)
      << "re-filling to the old size must reuse the retained capacity";
}

TEST(TriggerAbsorbedTest, DeepChainDoesNotOverflowTheStack) {
  // Regression: trigger_absorbed used to recurse once per absorption link;
  // a long back-merge chain (one link per merged request) overflowed the
  // real stack. 200k links * ~60B/frame would have needed ~12 MB of stack.
  Simulator sim;
  RequestPool pool(sim);
  constexpr int kDepth = 200'000;
  RequestPtr head = pool.make_write({{0, 1}});
  Request* cur = head.get();
  std::vector<RequestPtr> keep;  // keep every link alive independently
  keep.reserve(kDepth);
  for (int i = 1; i <= kDepth; ++i) {
    RequestPtr next = pool.make_write({{Lba(i), 1}});
    keep.push_back(next);
    cur->absorbed.push_back(std::move(next));
    cur = keep.back().get();
  }
  trigger_absorbed(*head);
  for (const RequestPtr& r : keep) EXPECT_TRUE(r->completion.is_set());
}

TEST(TriggerAbsorbedTest, PreservesPreorderTriggerSequence) {
  // The completion order must match the old recursion (preorder): parent's
  // first absorbed subtree completely before the second.
  Simulator sim;
  RequestPool pool(sim);
  RequestPtr root = pool.make_write({{0, 1}});
  RequestPtr a = pool.make_write({{1, 1}});
  RequestPtr a1 = pool.make_write({{2, 1}});
  RequestPtr b = pool.make_write({{3, 1}});
  a->absorbed.push_back(a1);
  root->absorbed.push_back(a);
  root->absorbed.push_back(b);

  std::vector<Lba> order;
  auto watch = [&](RequestPtr& r) -> sim::Task {
    co_await r->completion.wait();
    order.push_back(r->first_lba());
  };
  sim.spawn("wa", watch(a));
  sim.spawn("wa1", watch(a1));
  sim.spawn("wb", watch(b));
  sim.run();
  trigger_absorbed(*root);
  sim.run();
  EXPECT_EQ(order, (std::vector<Lba>{1, 2, 3}));
}

}  // namespace
}  // namespace bio::blk
